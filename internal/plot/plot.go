// Package plot renders small ASCII charts so the experiment tools can
// regenerate the paper's figures directly in a terminal: multi-series line
// charts for the rate-distortion curves of Figs. 5/6 and binned scatter
// summaries for the Fig. 4 study.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X, Y []float64
}

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Chart renders series into a width×height character grid with axis
// annotations and a legend. Series with mismatched X/Y lengths or no data
// are skipped.
func Chart(title, xlabel, ylabel string, width, height int, series []Series) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			continue
		}
		any = true
		for i := range s.X {
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if !any {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			continue
		}
		m := markers[si%len(markers)]
		// Plot line segments between consecutive points.
		for i := 0; i < len(s.X); i++ {
			if i > 0 {
				drawSegment(grid, width, height, xmin, xmax, ymin, ymax,
					s.X[i-1], s.Y[i-1], s.X[i], s.Y[i], '.')
			}
		}
		for i := range s.X {
			cx, cy := toCell(width, height, xmin, xmax, ymin, ymax, s.X[i], s.Y[i])
			grid[cy][cx] = m
		}
	}
	// Render with a y-axis gutter.
	for row := 0; row < height; row++ {
		yv := ymax - (ymax-ymin)*float64(row)/float64(height-1)
		fmt.Fprintf(&b, "%8.2f |%s\n", yv, string(grid[row]))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %-*.2f%*.2f\n", "", width/2, xmin, width-width/2, xmax)
	fmt.Fprintf(&b, "%8s  x: %s, y: %s\n", "", xlabel, ylabel)
	for si, s := range series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			continue
		}
		fmt.Fprintf(&b, "%8s  %c %s\n", "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func toCell(w, h int, xmin, xmax, ymin, ymax, x, y float64) (int, int) {
	cx := int(math.Round((x - xmin) / (xmax - xmin) * float64(w-1)))
	cy := int(math.Round((ymax - y) / (ymax - ymin) * float64(h-1)))
	if cx < 0 {
		cx = 0
	}
	if cx >= w {
		cx = w - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= h {
		cy = h - 1
	}
	return cx, cy
}

func drawSegment(grid [][]byte, w, h int, xmin, xmax, ymin, ymax, x0, y0, x1, y1 float64, ch byte) {
	const steps = 64
	for i := 0; i <= steps; i++ {
		t := float64(i) / steps
		cx, cy := toCell(w, h, xmin, xmax, ymin, ymax, x0+(x1-x0)*t, y0+(y1-y0)*t)
		if grid[cy][cx] == ' ' {
			grid[cy][cx] = ch
		}
	}
}

// Histogram renders labelled counts as horizontal bars, scaled to fit.
func Histogram(title string, labels []string, counts []int, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(labels) != len(counts) || len(labels) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	maxC := 0
	maxL := 0
	for i, c := range counts {
		if c > maxC {
			maxC = c
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if width < 10 {
		width = 10
	}
	for i, c := range counts {
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&b, "  %-*s |%s %d\n", maxL, labels[i], strings.Repeat("#", bar), c)
	}
	return b.String()
}
