package plot

import (
	"strings"
	"testing"
)

func TestChartContainsSeriesAndLabels(t *testing.T) {
	out := Chart("RD", "kbit/s", "dB", 40, 10, []Series{
		{Name: "ACBM", X: []float64{10, 20, 30}, Y: []float64{28, 30, 31}},
		{Name: "FSBM", X: []float64{10, 20, 30}, Y: []float64{27, 29, 30.5}},
	})
	for _, want := range []string{"RD", "ACBM", "FSBM", "kbit/s", "dB", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	if len(strings.Split(out, "\n")) < 10 {
		t.Fatal("chart too short")
	}
}

func TestChartEmptyData(t *testing.T) {
	out := Chart("empty", "x", "y", 30, 8, nil)
	if !strings.Contains(out, "no data") {
		t.Fatal("empty chart must say so")
	}
	out = Chart("bad", "x", "y", 30, 8, []Series{{Name: "b", X: []float64{1}, Y: nil}})
	if !strings.Contains(out, "no data") {
		t.Fatal("mismatched series must be skipped")
	}
}

func TestChartSinglePointAndConstantSeries(t *testing.T) {
	out := Chart("c", "x", "y", 30, 8, []Series{
		{Name: "p", X: []float64{5}, Y: []float64{1}},
		{Name: "q", X: []float64{1, 2, 3}, Y: []float64{7, 7, 7}},
	})
	if !strings.Contains(out, "p") || !strings.Contains(out, "q") {
		t.Fatalf("degenerate chart broken:\n%s", out)
	}
}

func TestChartMinimumDimensions(t *testing.T) {
	out := Chart("tiny", "x", "y", 1, 1, []Series{
		{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}},
	})
	if out == "" {
		t.Fatal("tiny chart empty")
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram("errors", []string{"0", "1", ">=5"}, []int{90, 8, 2}, 20)
	if !strings.Contains(out, "errors") || !strings.Contains(out, ">=5") {
		t.Fatalf("histogram missing content:\n%s", out)
	}
	// The largest class must have the longest bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "#") <= strings.Count(lines[2], "#") {
		t.Fatalf("bars not scaled:\n%s", out)
	}
	if !strings.Contains(Histogram("x", nil, nil, 10), "no data") {
		t.Fatal("empty histogram must say so")
	}
	if !strings.Contains(Histogram("z", []string{"a"}, []int{0}, 10), "a") {
		t.Fatal("zero-count histogram broken")
	}
}

func TestDensityBasics(t *testing.T) {
	xs := []float64{0, 1, 2, 2, 2, 5}
	ys := []float64{0, 1, 3, 3, 3, 9}
	out := Density("d", xs, ys, 20, 6, 0, 0)
	if !strings.Contains(out, "d\n") {
		t.Fatal("title missing")
	}
	// The triple point must render darker than singles.
	if !strings.ContainsAny(out, ":-=+*#%@") {
		t.Fatalf("no dense cells rendered:\n%s", out)
	}
	if Density("e", nil, nil, 20, 6, 0, 0) == "" || !strings.Contains(Density("e", nil, nil, 20, 6, 0, 0), "no data") {
		t.Fatal("empty density must say no data")
	}
	if !strings.Contains(Density("m", []float64{1}, []float64{1, 2}, 20, 6, 0, 0), "no data") {
		t.Fatal("mismatched lengths must be rejected")
	}
}

func TestDensityFixedAxes(t *testing.T) {
	// With a shared xmax, a point at x=5 on a 0..10 axis lands mid-row.
	out := Density("f", []float64{5}, []float64{0}, 21, 4, 10, 10)
	lines := strings.Split(out, "\n")
	bottom := lines[len(lines)-4] // last grid row
	idx := strings.IndexAny(bottom, ".:-=+*#%@")
	if idx < 0 {
		t.Fatalf("point not rendered:\n%s", out)
	}
	col := idx - strings.Index(bottom, "|") - 1
	if col < 8 || col > 12 {
		t.Fatalf("point at column %d, want ~10:\n%s", col, out)
	}
}

func TestDensityAllZeroValues(t *testing.T) {
	out := Density("z", []float64{0, 0}, []float64{0, 0}, 12, 4, 0, 0)
	if out == "" {
		t.Fatal("zero-value density broke")
	}
}
