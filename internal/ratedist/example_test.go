package ratedist_test

import (
	"fmt"

	"repro/internal/ratedist"
)

// Example compares two rate-distortion curves the way the experiment
// harness compares ACBM with FSBM.
func Example() {
	acbm := &ratedist.Curve{Name: "ACBM", Points: []ratedist.Point{
		{RateKbps: 20, PSNR: 33.0}, {RateKbps: 40, PSNR: 36.0},
	}}
	fsbm := &ratedist.Curve{Name: "FSBM", Points: []ratedist.Point{
		{RateKbps: 22, PSNR: 33.0}, {RateKbps: 44, PSNR: 36.0},
	}}
	savings, err := ratedist.AvgRateSavings(acbm, fsbm)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ACBM needs %.1f%% less rate at equal quality\n", 100*savings)
	// Output:
	// ACBM needs 9.1% less rate at equal quality
}
