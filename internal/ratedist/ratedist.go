// Package ratedist provides rate-distortion curve containers and
// comparisons for the paper's Figs. 5 and 6: PSNR-vs-rate points per
// algorithm, interpolation on the rate axis, and an average-PSNR-delta
// comparison in the style of Bjøntegaard's metric.
package ratedist

import (
	"fmt"
	"math"
	"sort"
)

// Point is one operating point: average luma PSNR at an average bitrate.
type Point struct {
	RateKbps float64
	PSNR     float64
	Qp       int // the quantiser that produced the point (0 if unknown)
}

// Curve is a named rate-distortion characteristic.
type Curve struct {
	Name   string
	Points []Point
}

// Sort orders the points by increasing rate.
func (c *Curve) Sort() {
	sort.Slice(c.Points, func(i, j int) bool { return c.Points[i].RateKbps < c.Points[j].RateKbps })
}

// RateRange returns the minimum and maximum rate covered by the curve.
func (c *Curve) RateRange() (lo, hi float64, err error) {
	if len(c.Points) == 0 {
		return 0, 0, fmt.Errorf("ratedist: curve %q is empty", c.Name)
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, p := range c.Points {
		lo = math.Min(lo, p.RateKbps)
		hi = math.Max(hi, p.RateKbps)
	}
	return lo, hi, nil
}

// PSNRAt returns the PSNR at the given rate by piecewise-linear
// interpolation over log-rate (the domain Bjøntegaard metrics use).
// The rate must lie within the curve's range.
func (c *Curve) PSNRAt(rate float64) (float64, error) {
	if len(c.Points) == 0 {
		return 0, fmt.Errorf("ratedist: curve %q is empty", c.Name)
	}
	pts := make([]Point, len(c.Points))
	copy(pts, c.Points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].RateKbps < pts[j].RateKbps })
	if rate < pts[0].RateKbps || rate > pts[len(pts)-1].RateKbps {
		return 0, fmt.Errorf("ratedist: rate %.2f outside curve %q range [%.2f, %.2f]",
			rate, c.Name, pts[0].RateKbps, pts[len(pts)-1].RateKbps)
	}
	for i := 1; i < len(pts); i++ {
		if rate <= pts[i].RateKbps {
			a, b := pts[i-1], pts[i]
			if b.RateKbps == a.RateKbps {
				return math.Max(a.PSNR, b.PSNR), nil
			}
			t := (math.Log(rate) - math.Log(a.RateKbps)) / (math.Log(b.RateKbps) - math.Log(a.RateKbps))
			return a.PSNR + t*(b.PSNR-a.PSNR), nil
		}
	}
	return pts[len(pts)-1].PSNR, nil
}

// AvgDeltaPSNR returns the mean PSNR difference a−b over their overlapping
// rate range, sampled on a logarithmic grid — positive means a is the
// better rate-distortion characteristic (a simplified BD-PSNR).
func AvgDeltaPSNR(a, b *Curve) (float64, error) {
	alo, ahi, err := a.RateRange()
	if err != nil {
		return 0, err
	}
	blo, bhi, err := b.RateRange()
	if err != nil {
		return 0, err
	}
	lo, hi := math.Max(alo, blo), math.Min(ahi, bhi)
	if lo >= hi {
		return 0, fmt.Errorf("ratedist: curves %q and %q do not overlap in rate", a.Name, b.Name)
	}
	const samples = 64
	var sum float64
	for i := 0; i < samples; i++ {
		r := math.Exp(math.Log(lo) + (math.Log(hi)-math.Log(lo))*float64(i)/float64(samples-1))
		pa, err := a.PSNRAt(r)
		if err != nil {
			return 0, err
		}
		pb, err := b.PSNRAt(r)
		if err != nil {
			return 0, err
		}
		sum += pa - pb
	}
	return sum / samples, nil
}

// PSNRRange returns the minimum and maximum PSNR covered by the curve.
func (c *Curve) PSNRRange() (lo, hi float64, err error) {
	if len(c.Points) == 0 {
		return 0, 0, fmt.Errorf("ratedist: curve %q is empty", c.Name)
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, p := range c.Points {
		lo = math.Min(lo, p.PSNR)
		hi = math.Max(hi, p.PSNR)
	}
	return lo, hi, nil
}

// RateAt returns the rate needed to reach the given PSNR by
// piecewise-linear interpolation of log-rate over PSNR. The PSNR must lie
// within the curve's range and the curve must be monotone enough for the
// inversion to make sense (RD curves are).
func (c *Curve) RateAt(psnr float64) (float64, error) {
	if len(c.Points) == 0 {
		return 0, fmt.Errorf("ratedist: curve %q is empty", c.Name)
	}
	pts := make([]Point, len(c.Points))
	copy(pts, c.Points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].PSNR < pts[j].PSNR })
	if psnr < pts[0].PSNR || psnr > pts[len(pts)-1].PSNR {
		return 0, fmt.Errorf("ratedist: PSNR %.2f outside curve %q range [%.2f, %.2f]",
			psnr, c.Name, pts[0].PSNR, pts[len(pts)-1].PSNR)
	}
	for i := 1; i < len(pts); i++ {
		if psnr <= pts[i].PSNR {
			a, b := pts[i-1], pts[i]
			if b.PSNR == a.PSNR {
				return math.Min(a.RateKbps, b.RateKbps), nil
			}
			t := (psnr - a.PSNR) / (b.PSNR - a.PSNR)
			return math.Exp(math.Log(a.RateKbps) + t*(math.Log(b.RateKbps)-math.Log(a.RateKbps))), nil
		}
	}
	return pts[len(pts)-1].RateKbps, nil
}

// AvgRateSavings returns the mean relative rate difference (b−a)/b over
// the curves' overlapping PSNR range — positive means a needs fewer bits
// for the same quality (a simplified BD-rate with the sign flipped so
// "positive = a better").
func AvgRateSavings(a, b *Curve) (float64, error) {
	alo, ahi, err := a.PSNRRange()
	if err != nil {
		return 0, err
	}
	blo, bhi, err := b.PSNRRange()
	if err != nil {
		return 0, err
	}
	lo, hi := math.Max(alo, blo), math.Min(ahi, bhi)
	if lo >= hi {
		return 0, fmt.Errorf("ratedist: curves %q and %q do not overlap in PSNR", a.Name, b.Name)
	}
	const samples = 64
	var sum float64
	for i := 0; i < samples; i++ {
		q := lo + (hi-lo)*float64(i)/float64(samples-1)
		ra, err := a.RateAt(q)
		if err != nil {
			return 0, err
		}
		rb, err := b.RateAt(q)
		if err != nil {
			return 0, err
		}
		if rb > 0 {
			sum += (rb - ra) / rb
		}
	}
	return sum / samples, nil
}

// Dominates reports whether a's PSNR is at least b's at every sampled rate
// in their overlapping range (within a tolerance in dB).
func Dominates(a, b *Curve, tolerance float64) (bool, error) {
	alo, ahi, err := a.RateRange()
	if err != nil {
		return false, err
	}
	blo, bhi, err := b.RateRange()
	if err != nil {
		return false, err
	}
	lo, hi := math.Max(alo, blo), math.Min(ahi, bhi)
	if lo >= hi {
		return false, fmt.Errorf("ratedist: curves %q and %q do not overlap in rate", a.Name, b.Name)
	}
	const samples = 32
	for i := 0; i < samples; i++ {
		r := lo + (hi-lo)*float64(i)/float64(samples-1)
		pa, err := a.PSNRAt(r)
		if err != nil {
			return false, err
		}
		pb, err := b.PSNRAt(r)
		if err != nil {
			return false, err
		}
		if pa < pb-tolerance {
			return false, nil
		}
	}
	return true, nil
}
