package ratedist

import (
	"math"
	"testing"
)

func line(name string, pts ...[2]float64) *Curve {
	c := &Curve{Name: name}
	for _, p := range pts {
		c.Points = append(c.Points, Point{RateKbps: p[0], PSNR: p[1]})
	}
	return c
}

func TestSortAndRange(t *testing.T) {
	c := line("x", [2]float64{30, 31}, [2]float64{10, 28}, [2]float64{20, 30})
	c.Sort()
	if c.Points[0].RateKbps != 10 || c.Points[2].RateKbps != 30 {
		t.Fatal("Sort failed")
	}
	lo, hi, err := c.RateRange()
	if err != nil || lo != 10 || hi != 30 {
		t.Fatalf("RateRange = %v %v %v", lo, hi, err)
	}
	if _, _, err := (&Curve{Name: "empty"}).RateRange(); err == nil {
		t.Fatal("empty curve accepted")
	}
}

func TestPSNRAtEndpointsAndMidpoint(t *testing.T) {
	c := line("x", [2]float64{10, 28}, [2]float64{40, 34})
	for _, tc := range []struct{ r, want float64 }{{10, 28}, {40, 34}} {
		got, err := c.PSNRAt(tc.r)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("PSNRAt(%v) = %v, want %v", tc.r, got, tc.want)
		}
	}
	// Log-rate midpoint of [10, 40] is 20.
	got, err := c.PSNRAt(20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-31) > 1e-9 {
		t.Fatalf("PSNRAt(20) = %v, want 31 (log-domain midpoint)", got)
	}
}

func TestPSNRAtOutOfRange(t *testing.T) {
	c := line("x", [2]float64{10, 28}, [2]float64{40, 34})
	if _, err := c.PSNRAt(5); err == nil {
		t.Fatal("below-range rate accepted")
	}
	if _, err := c.PSNRAt(50); err == nil {
		t.Fatal("above-range rate accepted")
	}
}

func TestAvgDeltaPSNRSignsAndSymmetry(t *testing.T) {
	hi := line("hi", [2]float64{10, 30}, [2]float64{40, 36})
	lo := line("lo", [2]float64{10, 28}, [2]float64{40, 34})
	d, err := AvgDeltaPSNR(hi, lo)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-2) > 1e-9 {
		t.Fatalf("delta = %v, want 2", d)
	}
	rev, err := AvgDeltaPSNR(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d+rev) > 1e-9 {
		t.Fatal("delta not antisymmetric")
	}
}

func TestAvgDeltaPSNRNoOverlap(t *testing.T) {
	a := line("a", [2]float64{10, 30}, [2]float64{20, 32})
	b := line("b", [2]float64{30, 30}, [2]float64{40, 32})
	if _, err := AvgDeltaPSNR(a, b); err == nil {
		t.Fatal("non-overlapping curves accepted")
	}
}

func TestDominates(t *testing.T) {
	hi := line("hi", [2]float64{10, 30}, [2]float64{40, 36})
	lo := line("lo", [2]float64{10, 28}, [2]float64{40, 34})
	ok, err := Dominates(hi, lo, 0)
	if err != nil || !ok {
		t.Fatalf("hi should dominate lo: %v %v", ok, err)
	}
	ok, err = Dominates(lo, hi, 0)
	if err != nil || ok {
		t.Fatalf("lo should not dominate hi: %v %v", ok, err)
	}
	// Tolerance forgives a small deficit.
	ok, err = Dominates(lo, hi, 2.5)
	if err != nil || !ok {
		t.Fatalf("tolerant domination failed: %v %v", ok, err)
	}
}

func TestCrossingCurvesNeitherDominates(t *testing.T) {
	a := line("a", [2]float64{10, 28}, [2]float64{40, 36})
	b := line("b", [2]float64{10, 30}, [2]float64{40, 34})
	okA, _ := Dominates(a, b, 0)
	okB, _ := Dominates(b, a, 0)
	if okA || okB {
		t.Fatal("crossing curves reported domination")
	}
}

func TestRateAtAndPSNRRange(t *testing.T) {
	c := line("x", [2]float64{10, 28}, [2]float64{40, 34})
	lo, hi, err := c.PSNRRange()
	if err != nil || lo != 28 || hi != 34 {
		t.Fatalf("PSNRRange = %v %v %v", lo, hi, err)
	}
	r, err := c.RateAt(28)
	if err != nil || math.Abs(r-10) > 1e-9 {
		t.Fatalf("RateAt(28) = %v %v", r, err)
	}
	// Midpoint PSNR 31 maps to the log-rate midpoint, 20.
	r, err = c.RateAt(31)
	if err != nil || math.Abs(r-20) > 1e-9 {
		t.Fatalf("RateAt(31) = %v %v", r, err)
	}
	if _, err := c.RateAt(50); err == nil {
		t.Fatal("out-of-range PSNR accepted")
	}
}

func TestAvgRateSavingsSign(t *testing.T) {
	cheap := line("cheap", [2]float64{10, 30}, [2]float64{20, 36})
	dear := line("dear", [2]float64{20, 30}, [2]float64{40, 36})
	s, err := AvgRateSavings(cheap, dear)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.5) > 1e-9 { // cheap needs exactly half the rate everywhere
		t.Fatalf("savings = %v, want 0.5", s)
	}
	s, err = AvgRateSavings(dear, cheap)
	if err != nil {
		t.Fatal(err)
	}
	if s >= 0 {
		t.Fatalf("reverse savings = %v, want negative", s)
	}
}

func TestAvgRateSavingsNoPSNROverlap(t *testing.T) {
	a := line("a", [2]float64{10, 20}, [2]float64{20, 25})
	b := line("b", [2]float64{10, 30}, [2]float64{20, 35})
	if _, err := AvgRateSavings(a, b); err == nil {
		t.Fatal("non-overlapping PSNR ranges accepted")
	}
}
