package search

import "repro/internal/mvfield"

// CrossDiamond is the cross-diamond search of Cheung and Po [5]: a
// cross-shaped pattern exploits the centre-biased, axis-aligned motion of
// real sequences before switching to diamond refinement. Included as a
// classical fast-search baseline.
type CrossDiamond struct {
	NoHalfPel bool
	MaxIter   int
}

// Name implements Searcher.
func (c *CrossDiamond) Name() string { return "CDS" }

var crossLarge = [8]mvfield.MV{
	{X: 0, Y: -4}, {X: 0, Y: -2}, {X: 0, Y: 2}, {X: 0, Y: 4},
	{X: -4, Y: 0}, {X: -2, Y: 0}, {X: 2, Y: 0}, {X: 4, Y: 0},
}

// Search implements Searcher.
func (c *CrossDiamond) Search(in *Input) Result {
	var visited visitedSet
	pts := 0
	eval := func(mv mvfield.MV) (int, bool) {
		if !in.Legal(mv) || visited.seen(mv) {
			return 0, false
		}
		visited.add(mv)
		pts++
		return in.SAD(mv), true
	}
	best := mvfield.Zero
	bestSAD := in.SAD(best)
	visited.add(best)
	pts++

	// Phase 1: large cross. If the centre survives, finish with the small
	// diamond immediately (first-step stop for stationary blocks).
	center := best
	for _, off := range crossLarge {
		mv := center.Add(off)
		if mv.Linf() > 2*in.Range {
			continue
		}
		if s, ok := eval(mv); ok && better(s, mv, bestSAD, best) {
			best, bestSAD = mv, s
		}
	}
	if best != center {
		// Phase 2: diamond iterations as in DS.
		maxIter := c.MaxIter
		if maxIter <= 0 {
			maxIter = in.Range
		}
		for iter := 0; iter < maxIter; iter++ {
			ctr := best
			for _, off := range ldsp {
				mv := ctr.Add(off)
				if mv.Linf() > 2*in.Range {
					continue
				}
				if s, ok := eval(mv); ok && better(s, mv, bestSAD, best) {
					best, bestSAD = mv, s
				}
			}
			if best == ctr {
				break
			}
		}
	}
	// Final small diamond.
	for _, off := range sdsp {
		mv := best.Add(off)
		if mv.Linf() > 2*in.Range {
			continue
		}
		if s, ok := eval(mv); ok && better(s, mv, bestSAD, best) {
			best, bestSAD = mv, s
		}
	}
	if !c.NoHalfPel {
		mv, sad, extra := refineHalfPel(in, best, bestSAD)
		best, bestSAD, pts = mv, sad, pts+extra
	}
	return Result{MV: best, SAD: bestSAD, Points: pts}
}
