package search

import "repro/internal/mvfield"

// Diamond is the diamond search (DS) algorithm: a large diamond search
// pattern (LDSP) iterated until the centre wins, then one small diamond
// (SDSP) pass. A classical unrestricted-centre-biased baseline.
type Diamond struct {
	NoHalfPel bool
	// MaxIter bounds LDSP iterations (default: enough to cross Range).
	MaxIter int
}

// Name implements Searcher.
func (d *Diamond) Name() string { return "DS" }

var ldsp = [8]mvfield.MV{
	{X: 0, Y: -4}, {X: 2, Y: -2}, {X: 4, Y: 0}, {X: 2, Y: 2},
	{X: 0, Y: 4}, {X: -2, Y: 2}, {X: -4, Y: 0}, {X: -2, Y: -2},
}

var sdsp = [4]mvfield.MV{
	{X: 0, Y: -2}, {X: 2, Y: 0}, {X: 0, Y: 2}, {X: -2, Y: 0},
}

// Search implements Searcher.
func (d *Diamond) Search(in *Input) Result {
	var visited visitedSet
	pts := 0
	eval := func(mv mvfield.MV) (int, bool) {
		if !in.Legal(mv) || visited.seen(mv) {
			return 0, false
		}
		visited.add(mv)
		pts++
		return in.SAD(mv), true
	}
	best := mvfield.Zero
	bestSAD := in.SAD(best)
	visited.add(best)
	pts++

	maxIter := d.MaxIter
	if maxIter <= 0 {
		maxIter = in.Range // each LDSP step moves ≥1 pel toward the target
	}
	for iter := 0; iter < maxIter; iter++ {
		center := best
		for _, off := range ldsp {
			mv := center.Add(off)
			if mv.Linf() > 2*in.Range {
				continue
			}
			if s, ok := eval(mv); ok && better(s, mv, bestSAD, best) {
				best, bestSAD = mv, s
			}
		}
		if best == center {
			break
		}
	}
	for _, off := range sdsp {
		mv := best.Add(off)
		if mv.Linf() > 2*in.Range {
			continue
		}
		if s, ok := eval(mv); ok && better(s, mv, bestSAD, best) {
			best, bestSAD = mv, s
		}
	}
	if !d.NoHalfPel {
		mv, sad, extra := refineHalfPel(in, best, bestSAD)
		best, bestSAD, pts = mv, sad, pts+extra
	}
	return Result{MV: best, SAD: bestSAD, Points: pts}
}
