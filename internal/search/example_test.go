package search_test

import (
	"fmt"

	"repro/internal/frame"
	"repro/internal/search"
	"repro/internal/video"
)

// Example compares the full search and a fast baseline on a block whose
// content moved by a known displacement.
func Example() {
	tex := video.Noise{Seed: 9, Scale: 6, Octaves: 3}
	ref := frame.NewPlane(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			ref.Set(x, y, frame.ClampU8(int(40+180*tex.At(float64(x), float64(y)))))
		}
	}
	cur := ref.Shift(4, -3) // content moves 4 right, 3 up

	for _, s := range []search.Searcher{&search.FSBM{}, &search.Diamond{}} {
		in := &search.Input{
			Cur: cur, Ref: ref, RefI: frame.Interpolate(ref),
			BX: 40, BY: 40, W: 16, H: 16, Range: 15, Qp: 16,
		}
		res := s.Search(in)
		fmt.Printf("%-5s mv=%v sad=%d points=%d\n", s.Name(), res.MV, res.SAD, res.Points)
	}
	// Output:
	// FSBM  mv=(-4,+3) sad=0 points=969
	// DS    mv=(-4,+3) sad=0 points=33
}
