package search

// Forker is implemented by Searchers that support the parallel encoder's
// worker model. The protocol is frame-granular: at the start of a frame's
// analysis the encoder calls Fork once per worker (every fork is taken
// before any is joined), each returned instance is owned exclusively by
// one worker for that frame, and after the frame's analysis completes
// Join is called once per fork to merge whatever the instance
// accumulated.
//
// The contract splits a searcher's state along the frame boundary:
//
//   - Decided at frame start, frozen during the frame: any control
//     parameter that feeds back into the search itself (thresholds,
//     adaptation targets). Forks snapshot it, so every macroblock of the
//     frame sees the same decision regardless of which worker runs it.
//   - Merged additively in Join: per-worker accounting (statistics,
//     consumed search points). The merge must be order-independent —
//     plain sums — so the totals, and any once-per-frame control update
//     computed from them after the last Join, are identical for every
//     worker count and schedule. That is what keeps bitstreams
//     bit-identical across Workers, Pool and Pipeline settings.
//
// Stateless searchers return themselves from Fork and make Join a no-op.
// core.ACBM forks a fresh instance and adds its counters back in Join;
// core.Budgeted additionally freezes its α/γ thresholds per frame and
// servos them once per frame when the last fork joins.
type Forker interface {
	Searcher
	// Fork returns a Searcher for exclusive use by one worker goroutine.
	Fork() Searcher
	// Join merges state accumulated by a Searcher previously returned from
	// Fork on this instance. Called once per fork, after analysis.
	Join(Searcher)
}

// Fork implements Forker. FSBM is stateless, so the instance is shared.
func (f *FSBM) Fork() Searcher { return f }

// Join implements Forker (no state to merge).
func (f *FSBM) Join(Searcher) {}

// Fork implements Forker. PBM is stateless, so the instance is shared.
func (p *PBM) Fork() Searcher { return p }

// Join implements Forker (no state to merge).
func (p *PBM) Join(Searcher) {}

// Fork implements Forker. TSS is stateless, so the instance is shared.
func (t *TSS) Fork() Searcher { return t }

// Join implements Forker (no state to merge).
func (t *TSS) Join(Searcher) {}

// Fork implements Forker. NTSS is stateless, so the instance is shared.
func (n *NTSS) Fork() Searcher { return n }

// Join implements Forker (no state to merge).
func (n *NTSS) Join(Searcher) {}

// Fork implements Forker. FSS is stateless, so the instance is shared.
func (f *FSS) Fork() Searcher { return f }

// Join implements Forker (no state to merge).
func (f *FSS) Join(Searcher) {}

// Fork implements Forker. Diamond is stateless, so the instance is shared.
func (d *Diamond) Fork() Searcher { return d }

// Join implements Forker (no state to merge).
func (d *Diamond) Join(Searcher) {}

// Fork implements Forker. CrossDiamond is stateless, so the instance is
// shared.
func (c *CrossDiamond) Fork() Searcher { return c }

// Join implements Forker (no state to merge).
func (c *CrossDiamond) Join(Searcher) {}

// Fork implements Forker. HEXBS is stateless, so the instance is shared.
func (h *HEXBS) Fork() Searcher { return h }

// Join implements Forker (no state to merge).
func (h *HEXBS) Join(Searcher) {}

// Fork implements Forker. RCFSBM is stateless, so the instance is shared.
func (r *RCFSBM) Fork() Searcher { return r }

// Join implements Forker (no state to merge).
func (r *RCFSBM) Join(Searcher) {}
