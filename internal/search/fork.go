package search

// Forker is implemented by Searchers that support the parallel encoder's
// worker model: Fork returns an instance the worker goroutine owns
// exclusively for one frame, and Join merges any state that instance
// accumulated (statistics, adaptation) back into the parent after the
// frame's analysis completes.
//
// Stateless searchers return themselves from Fork and make Join a no-op.
// Stateful searchers whose state is merely additive statistics (core.ACBM)
// fork a fresh instance and add the counters back in Join; the merge must
// be order-independent so the encode stays deterministic. Searchers with
// control state that feeds back into the search itself (core.Budgeted's
// complexity servo) must NOT implement Forker — the encoder falls back to
// sequential analysis for them, which is always correct.
type Forker interface {
	Searcher
	// Fork returns a Searcher for exclusive use by one worker goroutine.
	Fork() Searcher
	// Join merges state accumulated by a Searcher previously returned from
	// Fork on this instance. Called once per fork, after analysis.
	Join(Searcher)
}

// Fork implements Forker. FSBM is stateless, so the instance is shared.
func (f *FSBM) Fork() Searcher { return f }

// Join implements Forker (no state to merge).
func (f *FSBM) Join(Searcher) {}

// Fork implements Forker. PBM is stateless, so the instance is shared.
func (p *PBM) Fork() Searcher { return p }

// Join implements Forker (no state to merge).
func (p *PBM) Join(Searcher) {}
