package search

import "repro/internal/mvfield"

// FSBM is the full search block matching algorithm (§2.3): it evaluates
// every integer position within ±Range and then the 8 half-pel neighbours
// of the winner — (2p+1)²+8 = 969 candidates for the paper's p=15.
// It is the quality reference and the cost ceiling of the study.
type FSBM struct {
	// NoHalfPel disables the half-pel refinement step (integer-only
	// search), used by the Fig. 4 study and ablation benches.
	NoHalfPel bool
}

// Name implements Searcher.
func (f *FSBM) Name() string {
	if f.NoHalfPel {
		return "FSBM-int"
	}
	return "FSBM"
}

// Search implements Searcher. Candidates are scanned centre-outward (the
// spiral order of spiral.go) with ties broken toward the shorter vector;
// the result is deterministic, matches the exhaustive minimum of the SAD
// surface, and is identical — winner and Points — to a raster scan.
func (f *FSBM) Search(in *Input) Result {
	best := mvfield.Zero
	bestSAD := -1
	pts := 0
	for _, mv := range spiralOffsets(in.Range) {
		if !in.Legal(mv) {
			continue
		}
		pts++
		if bestSAD < 0 {
			best, bestSAD = mv, in.SAD(mv)
			continue
		}
		s := in.SADCapped(mv, bestSAD)
		if better(s, mv, bestSAD, best) {
			best, bestSAD = mv, s
		}
	}
	if bestSAD < 0 {
		// Degenerate: no legal candidate (cannot happen for in-frame
		// blocks since (0,0) is always legal); report the zero vector.
		return Result{MV: mvfield.Zero, SAD: in.SAD(mvfield.Zero), Points: 1}
	}
	if !f.NoHalfPel {
		mv, sad, extra := refineHalfPel(in, best, bestSAD)
		best, bestSAD, pts = mv, sad, pts+extra
	}
	return Result{MV: best, SAD: bestSAD, Points: pts}
}
