package search

import "repro/internal/mvfield"

// FSS is the four-step search of Po and Ma [4]: a 5×5 window pattern that
// shrinks to 3×3 for the final step, biased toward the centre. Included
// as a classical fast-search baseline.
type FSS struct {
	NoHalfPel bool
}

// Name implements Searcher.
func (f *FSS) Name() string { return "4SS" }

// Search implements Searcher.
func (f *FSS) Search(in *Input) Result {
	var visited visitedSet
	pts := 0
	eval := func(mv mvfield.MV) (int, bool) {
		if !in.Legal(mv) || visited.seen(mv) {
			return 0, false
		}
		visited.add(mv)
		pts++
		return in.SAD(mv), true
	}
	best := mvfield.Zero
	bestSAD := in.SAD(best)
	visited.add(best)
	pts++

	// Steps 1-3: 5×5 pattern (step 2 pels). If the best stays at the
	// centre the pattern shrinks immediately; the pattern re-centres on
	// the best point otherwise. Step 4: 3×3 pattern (step 1 pel).
	step := 2
	for s := 0; s < 4; s++ {
		if s == 3 {
			step = 1
		}
		center := best
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				mv := center.Add(mvfield.FromFullPel(dx*step, dy*step))
				if mv.Linf() > 2*in.Range {
					continue
				}
				if sv, ok := eval(mv); ok && better(sv, mv, bestSAD, best) {
					best, bestSAD = mv, sv
				}
			}
		}
		if best == center && s < 3 {
			// Centre is best: skip directly to the final small step.
			s = 2
		}
	}
	if !f.NoHalfPel {
		mv, sad, extra := refineHalfPel(in, best, bestSAD)
		best, bestSAD, pts = mv, sad, pts+extra
	}
	return Result{MV: best, SAD: bestSAD, Points: pts}
}
