package search

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/mvfield"
)

// TestSearchWinnersIdenticalAcrossKernelISAs certifies the dispatch
// invariant at the search layer: because every kernel tier returns
// bit-identical SADs, every searcher must pick the same winning vector,
// report the same SAD, and probe the same number of candidates no
// matter which ISA is active — including the half-pel refinement that
// goes through the fused ring kernel.
func TestSearchWinnersIdenticalAcrossKernelISAs(t *testing.T) {
	searchers := []Searcher{&FSBM{}, &PBM{}, &TSS{}, &FSS{}, &Diamond{}, &CrossDiamond{}}
	cur := texturedPlane(96, 96, 81)
	ref := texturedPlane(96, 96, 82)
	anchors := [][2]int{{0, 0}, {16, 48}, {40, 40}, {80, 80}}

	run := func() []Result {
		var out []Result
		for _, s := range searchers {
			for _, a := range anchors {
				in := newInput(cur, ref, a[0], a[1], 15, 16)
				in.CurField = mvfield.NewField(6, 6)
				out = append(out, s.Search(in))
			}
		}
		return out
	}

	restore, err := metrics.SetKernelISA("scalar")
	if err != nil {
		t.Fatal(err)
	}
	want := run()
	restore()

	for _, isa := range metrics.KernelISAs() {
		if isa == "scalar" {
			continue
		}
		restore, err := metrics.SetKernelISA(isa)
		if err != nil {
			t.Fatal(err)
		}
		got := run()
		restore()
		for i := range want {
			if got[i].MV != want[i].MV || got[i].SAD != want[i].SAD || got[i].Points != want[i].Points {
				t.Errorf("%s: result %d = {MV %v SAD %d Points %d}, scalar reference {MV %v SAD %d Points %d}",
					isa, i, got[i].MV, got[i].SAD, got[i].Points, want[i].MV, want[i].SAD, want[i].Points)
			}
		}
	}
}
