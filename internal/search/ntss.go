package search

import "repro/internal/mvfield"

// NTSS is the new three-step search (Li, Zeng, Liou 1994): TSS augmented
// with a centre-biased first step that also checks the 8 unit neighbours,
// and a halfway-stop for quasi-stationary blocks. Included as a classical
// baseline alongside TSS.
type NTSS struct {
	NoHalfPel bool
}

// Name implements Searcher.
func (n *NTSS) Name() string { return "NTSS" }

// Search implements Searcher.
func (n *NTSS) Search(in *Input) Result {
	var visited visitedSet
	pts := 0
	eval := func(mv mvfield.MV) (int, bool) {
		if !in.Legal(mv) || visited.seen(mv) {
			return 0, false
		}
		visited.add(mv)
		pts++
		return in.SAD(mv), true
	}
	finish := func(best mvfield.MV, bestSAD int) Result {
		if !n.NoHalfPel {
			mv, sad, extra := refineHalfPel(in, best, bestSAD)
			best, bestSAD, pts = mv, sad, pts+extra
		}
		return Result{MV: best, SAD: bestSAD, Points: pts}
	}

	step := 1
	for 2*step <= (in.Range+1)/2 {
		step *= 2
	}
	best := mvfield.Zero
	bestSAD := in.SAD(best)
	visited.add(best)
	pts++

	// First step: the usual ±step ring plus the ±1 unit ring.
	bestUnit, unitWins := mvfield.Zero, false
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			for _, s := range [2]int{1, step} {
				mv := mvfield.FromFullPel(dx*s, dy*s)
				if mv.Linf() > 2*in.Range {
					continue
				}
				if sv, ok := eval(mv); ok && better(sv, mv, bestSAD, best) {
					best, bestSAD = mv, sv
					unitWins = s == 1
					if unitWins {
						bestUnit = mv
					}
				}
			}
		}
	}
	if best == mvfield.Zero {
		// First-step stop: the centre won outright.
		return finish(best, bestSAD)
	}
	if unitWins {
		// Halfway stop: refine only the 8 neighbours of the winning unit
		// point, then stop.
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				mv := bestUnit.Add(mvfield.FromFullPel(dx, dy))
				if mv.Linf() > 2*in.Range {
					continue
				}
				if sv, ok := eval(mv); ok && better(sv, mv, bestSAD, best) {
					best, bestSAD = mv, sv
				}
			}
		}
		return finish(best, bestSAD)
	}
	// Otherwise continue as TSS with halving steps.
	for step /= 2; step >= 1; step /= 2 {
		center := best
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				mv := center.Add(mvfield.FromFullPel(dx*step, dy*step))
				if mv.Linf() > 2*in.Range {
					continue
				}
				if sv, ok := eval(mv); ok && better(sv, mv, bestSAD, best) {
					best, bestSAD = mv, sv
				}
			}
		}
	}
	return finish(best, bestSAD)
}

// HEXBS is the hexagon-based search (Zhu, Lin, Chau 2002): large-hexagon
// gradient descent followed by a small cross refinement; typically fewer
// points than diamond search for the same quality.
type HEXBS struct {
	NoHalfPel bool
	MaxIter   int
}

// Name implements Searcher.
func (h *HEXBS) Name() string { return "HEXBS" }

var hexLarge = [6]mvfield.MV{
	{X: 4, Y: 0}, {X: 2, Y: -4}, {X: -2, Y: -4},
	{X: -4, Y: 0}, {X: -2, Y: 4}, {X: 2, Y: 4},
}

// Search implements Searcher.
func (h *HEXBS) Search(in *Input) Result {
	var visited visitedSet
	pts := 0
	eval := func(mv mvfield.MV) (int, bool) {
		if !in.Legal(mv) || visited.seen(mv) {
			return 0, false
		}
		visited.add(mv)
		pts++
		return in.SAD(mv), true
	}
	best := mvfield.Zero
	bestSAD := in.SAD(best)
	visited.add(best)
	pts++

	maxIter := h.MaxIter
	if maxIter <= 0 {
		maxIter = in.Range
	}
	for iter := 0; iter < maxIter; iter++ {
		center := best
		for _, off := range hexLarge {
			mv := center.Add(off)
			if mv.Linf() > 2*in.Range {
				continue
			}
			if s, ok := eval(mv); ok && better(s, mv, bestSAD, best) {
				best, bestSAD = mv, s
			}
		}
		if best == center {
			break
		}
	}
	for _, off := range sdsp {
		mv := best.Add(off)
		if mv.Linf() > 2*in.Range {
			continue
		}
		if s, ok := eval(mv); ok && better(s, mv, bestSAD, best) {
			best, bestSAD = mv, s
		}
	}
	if !h.NoHalfPel {
		mv, sad, extra := refineHalfPel(in, best, bestSAD)
		best, bestSAD, pts = mv, sad, pts+extra
	}
	return Result{MV: best, SAD: bestSAD, Points: pts}
}
