package search

import "repro/internal/mvfield"

// PBM is the predictive block matching algorithm of §2.2, following the
// complexity-bounded scheme of Chimienti et al. the paper uses [9]:
//
//  1. evaluate the spatio-temporal predictor candidates (Fig. 2),
//  2. keep the candidate with the lowest SAD,
//  3. refine: a bounded integer-pel gradient descent followed by the
//     half-pel refinement step.
//
// The refinement budget bounds the worst-case complexity; the default
// matches the "very low computational cost" regime of the paper
// (a few tens of candidates per macroblock versus FSBM's 969).
type PBM struct {
	// MaxRefineSteps bounds the integer-pel descent (default 4).
	MaxRefineSteps int
	// NoHalfPel disables the final half-pel refinement.
	NoHalfPel bool
}

// DefaultRefineSteps is the integer refinement budget used in the paper's
// operating point.
const DefaultRefineSteps = 4

// Name implements Searcher.
func (p *PBM) Name() string { return "PBM" }

func (p *PBM) refineSteps() int {
	if p.MaxRefineSteps > 0 {
		return p.MaxRefineSteps
	}
	return DefaultRefineSteps
}

// Search implements Searcher. It requires CurField (and uses PrevField
// when present) to gather predictors; with no context it degrades to a
// small search around the zero vector.
//
// The probe set is tiny (a handful of predictors plus the bounded
// descent), so visited candidates are deduplicated with a linear scan
// over a stack-allocated list instead of a map, and losing candidates are
// evaluated with the early-terminating capped SAD — the winner and its
// exact SAD (and therefore the bitstream) are unchanged: a capped probe
// is only ever truncated when it already exceeds the incumbent, and a
// probe that ties the incumbent is returned exactly (no prefix of its
// rows can exceed the cap).
func (p *PBM) Search(in *Input) Result {
	var visited visitedSet
	pts := 0
	eval := func(mv mvfield.MV, cap int) (int, bool) {
		if !in.Legal(mv) || visited.seen(mv) {
			return 0, false
		}
		visited.add(mv)
		pts++
		if cap < 0 {
			return in.SAD(mv), true
		}
		return in.SADCapped(mv, cap), true
	}

	// Step 1: predictor candidates. Predictors are full-pel rounded: the
	// integer search stage operates on the full-pel grid only. With a
	// cross-layer seed the temporal predictors are replaced by the seed
	// candidates: the upper rung's field encodes the same history at
	// higher accuracy, and ≤ 4 seeds stand in for ≤ 9 temporal probes
	// (zero + 4 spatial + 4 seeds still fits cbuf).
	var cbuf [14]mvfield.MV
	cands := cbuf[:0]
	switch {
	case in.CurField != nil && in.Seed != nil:
		cands = in.CurField.AppendCandidates(cands, nil, in.MBX, in.MBY)
		sv, n := in.Seed.Seeds(in.MBX, in.MBY)
		for _, m := range sv[:n] {
			dup := false
			for _, v := range cands {
				if v == m {
					dup = true
					break
				}
			}
			if !dup {
				cands = append(cands, m)
			}
		}
	case in.CurField != nil:
		cands = in.CurField.AppendCandidates(cands, in.PrevField, in.MBX, in.MBY)
	default:
		cands = append(cands, mvfield.Zero)
	}
	best, bestSAD := mvfield.Zero, -1
	for _, c := range cands {
		c = in.ClampMV(c)
		c = mvfield.FromFullPel(c.X/2, c.Y/2) // snap to integer pel
		s, ok := eval(c, bestSAD)
		if !ok {
			continue
		}
		if bestSAD < 0 || better(s, c, bestSAD, best) {
			best, bestSAD = c, s
		}
	}
	if bestSAD < 0 {
		// All predictors were illegal/duplicates of illegal positions:
		// fall back to the zero vector.
		best = mvfield.Zero
		bestSAD = in.SAD(best)
		pts++
	}

	// Step 2/3: bounded small-diamond descent on the integer grid.
	for step := 0; step < p.refineSteps(); step++ {
		improved := false
		for _, d := range [4]mvfield.MV{{X: 2}, {X: -2}, {Y: 2}, {Y: -2}} {
			mv := best.Add(d)
			if mv.Linf() > 2*in.Range {
				continue
			}
			s, ok := eval(mv, bestSAD)
			if ok && better(s, mv, bestSAD, best) {
				best, bestSAD, improved = mv, s, true
			}
		}
		if !improved {
			break
		}
	}

	// Final half-pel refinement.
	if !p.NoHalfPel {
		mv, sad, extra := refineHalfPel(in, best, bestSAD)
		best, bestSAD, pts = mv, sad, pts+extra
	}
	return Result{MV: best, SAD: bestSAD, Points: pts}
}
