package search

import (
	"repro/internal/entropy"
	"repro/internal/metrics"
	"repro/internal/mvfield"
)

// RCFSBM is a rate-constrained full search: it minimises the Lagrangian
// cost of §2.1 of the paper,
//
//	J(mv) = SAD(mv) + λ·R(mv)
//
// where R is the bit cost of coding mv differentially against the median
// predictor and λ is proportional to the quantiser (metrics.LambdaSAD).
// Compared to plain FSBM it trades a little matching error for a much
// more coherent, cheaper-to-code motion field — the deficiency of plain
// FSBM that §2.3 describes.
type RCFSBM struct {
	NoHalfPel bool
}

// Name implements Searcher.
func (f *RCFSBM) Name() string { return "RC-FSBM" }

// cost returns J for a candidate.
func (in *Input) cost(sad int, mv mvfield.MV, pred mvfield.MV) int {
	return metrics.RDCost(sad, entropy.MVDBits(mv, pred), in.Qp)
}

// Search implements Searcher.
func (f *RCFSBM) Search(in *Input) Result {
	pred := mvfield.Zero
	if in.CurField != nil {
		pred = in.CurField.MedianPredictor(in.MBX, in.MBY)
	}
	best := mvfield.Zero
	bestSAD, bestCost := -1, 0
	pts := 0
	for v := -in.Range; v <= in.Range; v++ {
		for u := -in.Range; u <= in.Range; u++ {
			mv := mvfield.FromFullPel(u, v)
			if !in.Legal(mv) {
				continue
			}
			pts++
			sad := in.SAD(mv)
			j := in.cost(sad, mv, pred)
			if bestSAD < 0 || j < bestCost || (j == bestCost && mv.L1() < best.L1()) {
				best, bestSAD, bestCost = mv, sad, j
			}
		}
	}
	if bestSAD < 0 {
		sad := in.SAD(mvfield.Zero)
		return Result{MV: mvfield.Zero, SAD: sad, Points: 1}
	}
	if !f.NoHalfPel {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				mv := best.Add(mvfield.MV{X: dx, Y: dy})
				if !in.Legal(mv) {
					continue
				}
				pts++
				sad := in.SAD(mv)
				j := in.cost(sad, mv, pred)
				if j < bestCost || (j == bestCost && mv.L1() < best.L1()) {
					best, bestSAD, bestCost = mv, sad, j
				}
			}
		}
	}
	return Result{MV: best, SAD: bestSAD, Points: pts}
}
