package search

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/mvfield"
)

func TestRCFSBMEqualsFSBMOnExactMatch(t *testing.T) {
	// When a zero-SAD match exists it has minimal J too: both searchers
	// must land on the true motion vector.
	cur, ref := shiftedPair(6, -4, 77)
	in := newInput(cur, ref, 40, 40, 15, 16)
	in.CurField = mvfield.NewField(6, 6)
	in.MBX, in.MBY = 2, 2
	rc := (&RCFSBM{}).Search(in)
	fs := (&FSBM{}).Search(newInput(cur, ref, 40, 40, 15, 16))
	if rc.MV != fs.MV || rc.SAD != 0 {
		t.Fatalf("RC-FSBM %v (SAD %d) vs FSBM %v", rc.MV, rc.SAD, fs.MV)
	}
}

func TestRCFSBMPrefersPredictorOnAmbiguousSurface(t *testing.T) {
	// On a flat (constant) block every candidate has SAD 0; the rate term
	// must pull the choice to the median predictor.
	flat := texturedPlane(96, 96, 1)
	for y := 24; y < 72; y++ {
		for x := 24; x < 72; x++ {
			flat.Set(x, y, 128)
		}
	}
	in := newInput(flat, flat, 40, 40, 4, 16)
	fld := mvfield.NewField(6, 6)
	fld.Set(1, 2, mvfield.FromFullPel(2, 1)) // left neighbour
	fld.Set(2, 1, mvfield.FromFullPel(2, 1)) // above
	fld.Set(3, 1, mvfield.FromFullPel(2, 1)) // above-right
	in.CurField = fld
	in.MBX, in.MBY = 2, 2
	res := (&RCFSBM{}).Search(in)
	if res.MV != mvfield.FromFullPel(2, 1) {
		t.Fatalf("RC-FSBM chose %v, want the predictor (2,1)", res.MV)
	}
}

func TestRCFSBMFieldMoreCoherentThanFSBM(t *testing.T) {
	// Low-amplitude unrelated noise gives a near-flat SAD surface with
	// many near-ties; the rate term must pull RC-FSBM's field together
	// while plain FSBM scatters across the ties.
	mk := func(seed uint64) *frame.Plane {
		p := frame.NewPlane(96, 96)
		s := seed | 1
		for i := range p.Pix {
			s ^= s >> 12
			s ^= s << 25
			s ^= s >> 27
			p.Pix[i] = uint8(126 + s*2685821657736338717>>62) // 126..129
		}
		return p
	}
	cur, ref := mk(31), mk(32)
	run := func(s Searcher) float64 {
		fld := mvfield.NewField(6, 6)
		for mby := 0; mby < 6; mby++ {
			for mbx := 0; mbx < 6; mbx++ {
				in := newInput(cur, ref, 16*mbx, 16*mby, 8, 31) // max Qp → max λ
				in.CurField = fld
				in.MBX, in.MBY = mbx, mby
				fld.Set(mbx, mby, s.Search(in).MV)
			}
		}
		return fld.Smoothness()
	}
	rc, fs := run(&RCFSBM{}), run(&FSBM{})
	if rc >= fs {
		t.Fatalf("RC-FSBM field not smoother: %.2f vs FSBM %.2f", rc, fs)
	}
}

func TestRCFSBMName(t *testing.T) {
	if (&RCFSBM{}).Name() != "RC-FSBM" {
		t.Fatal("name wrong")
	}
}

func TestNTSSAndHEXBSRecoverShifts(t *testing.T) {
	for _, s := range []Searcher{&NTSS{}, &HEXBS{}} {
		// Small shift (centre-biased path) and moderate shift.
		for _, d := range [][2]int{{1, 1}, {5, -3}} {
			cur, ref := shiftedPair(d[0], d[1], 91)
			in := newInput(cur, ref, 40, 40, 15, 16)
			res := s.Search(in)
			want := mvfield.FromFullPel(-d[0], -d[1])
			if res.MV != want {
				t.Errorf("%s shift %v: MV %v, want %v", s.Name(), d, res.MV, want)
			}
			if res.SAD != 0 {
				t.Errorf("%s shift %v: SAD %d", s.Name(), d, res.SAD)
			}
		}
	}
}

func TestNTSSHalfwayStopIsCheapOnSmallMotion(t *testing.T) {
	cur, ref := shiftedPair(1, 0, 41)
	in := newInput(cur, ref, 40, 40, 15, 16)
	res := (&NTSS{}).Search(in)
	if res.Points > 40 {
		t.Fatalf("NTSS used %d points on unit motion; halfway stop broken", res.Points)
	}
}

func TestHEXBSCheaperThanDiamondOnLongMotion(t *testing.T) {
	cur, ref := shiftedPair(12, 0, 51)
	inH := newInput(cur, ref, 40, 40, 15, 16)
	inD := newInput(cur, ref, 40, 40, 15, 16)
	h := (&HEXBS{}).Search(inH)
	d := (&Diamond{}).Search(inD)
	if h.MV != d.MV {
		t.Skipf("different minima found (%v vs %v); cost comparison not meaningful", h.MV, d.MV)
	}
	if h.Points > d.Points {
		t.Fatalf("HEXBS %d points > DS %d points on long motion", h.Points, d.Points)
	}
}

func TestNewBaselinesLegalAndNamed(t *testing.T) {
	cur := texturedPlane(96, 96, 61)
	ref := texturedPlane(96, 96, 62)
	for _, s := range []Searcher{&NTSS{}, &HEXBS{}, &RCFSBM{}} {
		for _, anchor := range [][2]int{{0, 0}, {80, 80}} {
			in := newInput(cur, ref, anchor[0], anchor[1], 15, 16)
			in.CurField = mvfield.NewField(6, 6)
			res := s.Search(in)
			if !in.Legal(res.MV) {
				t.Errorf("%s: illegal MV %v", s.Name(), res.MV)
			}
			if got := in.SAD(res.MV); got != res.SAD {
				t.Errorf("%s: reported SAD %d != actual %d", s.Name(), res.SAD, got)
			}
		}
	}
	if (&NTSS{}).Name() != "NTSS" || (&HEXBS{}).Name() != "HEXBS" {
		t.Fatal("names wrong")
	}
}
