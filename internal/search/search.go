// Package search implements block-matching motion search algorithms over
// the frame substrate: the exhaustive FSBM and predictive PBM algorithms
// the paper builds on, the shared half-pel refinement step, and classical
// fast-search baselines (TSS, 4SS, diamond, cross-diamond) referenced in
// the paper's related work.
//
// Every searcher reports the number of candidate positions it evaluated —
// the computational-complexity metric of the paper's Table 1.
package search

import (
	"repro/internal/frame"
	"repro/internal/metrics"
	"repro/internal/mvfield"
)

// Input describes one block-matching problem: find the motion vector for
// the W×H block of Cur anchored at (BX, BY), matching into Ref, within
// ±Range full pels.
type Input struct {
	Cur *frame.Plane
	Ref *frame.Plane
	// RefI is retained for compatibility with callers that pre-build a
	// half-pel view of Ref; the searchers no longer read it. Half-pel
	// candidates are evaluated by kernels that fuse the H.263 bilinear
	// interpolation into the SAD directly against Ref (bit-identical
	// values), so probing costs no grid materialisation.
	RefI *frame.Interpolated

	BX, BY int // block anchor in pels
	W, H   int // block size (16×16 for macroblocks)
	Range  int // p: maximum displacement in full pels

	Qp int // quantiser, used by rate-aware searchers and ACBM

	// Predictive context: the motion fields of the current (partially
	// computed) and previous frame, and this block's field coordinates.
	CurField, PrevField *mvfield.Field
	MBX, MBY            int

	// Seed, when non-nil, contributes cross-layer candidates to the
	// predictor set (simulcast ladder: the rung above's scaled motion
	// field). PBM then drops its temporal predictors — the seed layer
	// carries that history — which is the ladder's points/block saving.
	Seed LayerSeed

	// Collect, when non-nil, accumulates the SAD of every evaluated
	// candidate for the SAD_deviation statistic of the Fig. 4 study.
	Collect *metrics.Deviation

	// PixelDecimation, when true, evaluates candidates on a 4:1
	// subsampled pixel grid (scaled ×4 to keep SAD magnitudes
	// comparable) — the orthogonal fast-ME strategy of the papers the
	// introduction cites as [6–8]. It composes with any search pattern.
	PixelDecimation bool
}

// Result is the outcome of one block search.
type Result struct {
	MV     mvfield.MV // best motion vector, half-pel units
	SAD    int        // its matching error
	Points int        // candidate positions evaluated (Table 1 metric)
}

// Searcher is a block-matching motion estimation algorithm.
type Searcher interface {
	// Name identifies the algorithm in tables and plots.
	Name() string
	// Search solves one block-matching problem.
	Search(in *Input) Result
}

// Legal reports whether candidate mv (half-pel units) keeps the whole
// prediction block inside the reference frame's half-pel grid.
func (in *Input) Legal(mv mvfield.MV) bool {
	hx := 2*in.BX + mv.X
	hy := 2*in.BY + mv.Y
	return hx >= 0 && hy >= 0 &&
		hx+2*(in.W-1) <= 2*(in.Ref.W-1) &&
		hy+2*(in.H-1) <= 2*(in.Ref.H-1)
}

// ClampMV limits mv to the search range and to legal positions, moving it
// the minimum distance needed. Used to sanitise predictors that point
// outside the window.
func (in *Input) ClampMV(mv mvfield.MV) mvfield.MV {
	lim := 2 * in.Range
	mv = mv.Clamp(lim)
	c := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	mv.X = c(mv.X, -2*in.BX, 2*(in.Ref.W-in.W-in.BX)+1)
	mv.Y = c(mv.Y, -2*in.BY, 2*(in.Ref.H-in.H-in.BY)+1)
	return mv
}

// SAD evaluates candidate mv. Integer candidates read the reference plane
// directly; half-pel candidates fuse the interpolation into the kernel,
// reading the same plane. The candidate must be Legal.
func (in *Input) SAD(mv mvfield.MV) int {
	var s int
	switch {
	case in.PixelDecimation && mv.IsFullPel():
		fx, fy := mv.FullPel()
		s = metrics.SADDecimated(in.Cur, in.BX, in.BY, in.Ref, in.BX+fx, in.BY+fy, in.W, in.H)
	case in.PixelDecimation:
		s = metrics.SADHalfPelPlaneDecimated(in.Cur, in.BX, in.BY, in.Ref, 2*in.BX+mv.X, 2*in.BY+mv.Y, in.W, in.H)
	case mv.IsFullPel():
		fx, fy := mv.FullPel()
		s = metrics.SAD(in.Cur, in.BX, in.BY, in.Ref, in.BX+fx, in.BY+fy, in.W, in.H)
	default:
		s = metrics.SADHalfPelPlane(in.Cur, in.BX, in.BY, in.Ref, 2*in.BX+mv.X, 2*in.BY+mv.Y, in.W, in.H)
	}
	if in.Collect != nil {
		in.Collect.Add(s)
	}
	return s
}

// SADCapped is SAD with early termination; the returned value is only
// exact when ≤ cap. Half-pel candidates run the capped fused kernels.
// Collect still records the exact SAD when enabled (the Fig. 4 study
// needs unbiased deviations).
func (in *Input) SADCapped(mv mvfield.MV, cap int) int {
	if in.Collect != nil || in.PixelDecimation || cap < 0 {
		return in.SAD(mv)
	}
	if mv.IsFullPel() {
		fx, fy := mv.FullPel()
		return metrics.SADCapped(in.Cur, in.BX, in.BY, in.Ref, in.BX+fx, in.BY+fy, in.W, in.H, cap)
	}
	return metrics.SADHalfPelPlaneCapped(in.Cur, in.BX, in.BY, in.Ref, 2*in.BX+mv.X, 2*in.BY+mv.Y, in.W, in.H, cap)
}

// visitedSet deduplicates the small candidate sets of the predictive
// searchers. The probe budget is a few dozen positions, so a linear scan
// over a stack-allocated array beats a per-block map allocation; an
// overflow map keeps the semantics exact for oversized refinement budgets.
type visitedSet struct {
	n    int
	mvs  [48]mvfield.MV
	over map[mvfield.MV]bool
}

func (v *visitedSet) seen(mv mvfield.MV) bool {
	for i := 0; i < v.n; i++ {
		if v.mvs[i] == mv {
			return true
		}
	}
	return v.over != nil && v.over[mv]
}

func (v *visitedSet) add(mv mvfield.MV) {
	if v.n < len(v.mvs) {
		v.mvs[v.n] = mv
		v.n++
		return
	}
	if v.over == nil {
		v.over = make(map[mvfield.MV]bool, 16)
	}
	v.over[mv] = true
}

// better reports whether (sad, mv) improves on (bestSAD, bestMV), breaking
// SAD ties toward the shorter vector so all searchers prefer coherent,
// cheap-to-code motion.
func better(sad int, mv mvfield.MV, bestSAD int, bestMV mvfield.MV) bool {
	if sad != bestSAD {
		return sad < bestSAD
	}
	return mv.L1() < bestMV.L1()
}

// refineHalfPel evaluates the 8 half-pel neighbours of center and returns
// the best position along with the number of candidates evaluated. This is
// the refinement step shared by every integer-precision searcher (H.263
// half-pel motion). Probes run the capped fused kernels: a losing
// neighbour aborts within a few rows, and the returned bestSAD is always
// exact (truncation only happens above the incumbent; ties fold to the
// exact value).
func refineHalfPel(in *Input, center mvfield.MV, centerSAD int) (mvfield.MV, int, int) {
	best, bestSAD, pts := center, centerSAD, 0
	// Interior blocks (the vast majority) evaluate the whole ring with one
	// fused pass that shares the current block and reference rows across
	// all eight probes; the selection below replays the same scan order and
	// tie-breaks as the per-probe loop, so the outcome is identical.
	if center.IsFullPel() && in.Collect == nil && !in.PixelDecimation &&
		in.W%8 == 0 && in.W*in.H <= 256 &&
		in.Legal(center.Add(mvfield.MV{X: -1, Y: -1})) &&
		in.Legal(center.Add(mvfield.MV{X: 1, Y: 1})) {
		fx, fy := center.FullPel()
		var ring [9]int
		metrics.SADHalfPelRing(in.Cur, in.BX, in.BY, in.Ref, in.BX+fx, in.BY+fy, in.W, in.H, &ring)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				mv := center.Add(mvfield.MV{X: dx, Y: dy})
				pts++
				if s := ring[(dy+1)*3+dx+1]; better(s, mv, bestSAD, best) {
					best, bestSAD = mv, s
				}
			}
		}
		return best, bestSAD, pts
	}
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			mv := center.Add(mvfield.MV{X: dx, Y: dy})
			if !in.Legal(mv) {
				continue
			}
			pts++
			if s := in.SADCapped(mv, bestSAD); better(s, mv, bestSAD, best) {
				best, bestSAD = mv, s
			}
		}
	}
	return best, bestSAD, pts
}
