package search

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/metrics"
	"repro/internal/mvfield"
	"repro/internal/video"
)

// texturedPlane renders a deterministic textured luma plane large enough
// for full-range searches.
func texturedPlane(w, h int, seed uint64) *frame.Plane {
	n := video.Noise{Seed: seed, Scale: 5, Octaves: 3}
	p := frame.NewPlane(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			p.Set(x, y, frame.ClampU8(int(40+180*n.At(float64(x), float64(y)))))
		}
	}
	return p
}

// newInput builds a search input over cur/ref with interpolation prepared.
func newInput(cur, ref *frame.Plane, bx, by, rng, qp int) *Input {
	return &Input{
		Cur: cur, Ref: ref, RefI: frame.Interpolate(ref),
		BX: bx, BY: by, W: 16, H: 16, Range: rng, Qp: qp,
	}
}

// shiftedPair returns (cur, ref) where cur equals ref translated by
// (dx, dy) full pels; the true motion vector of interior blocks is (dx, dy).
func shiftedPair(dx, dy int, seed uint64) (cur, ref *frame.Plane) {
	ref = texturedPlane(96, 96, seed)
	cur = ref.Shift(dx, dy)
	return cur, ref
}

func TestLegal(t *testing.T) {
	p := texturedPlane(64, 64, 1)
	in := newInput(p, p, 16, 16, 15, 16)
	cases := []struct {
		mv   mvfield.MV
		want bool
	}{
		{mvfield.Zero, true},
		{mvfield.FromFullPel(-16, 0), true},  // exactly to the left edge
		{mvfield.FromFullPel(-17, 0), false}, // past the left edge
		{mvfield.FromFullPel(32, 32), true},  // exactly to the bottom-right corner
		{mvfield.FromFullPel(33, 32), false},
		{mvfield.MV{X: 65, Y: 0}, false}, // half-pel past the right edge
	}
	for _, c := range cases {
		if got := in.Legal(c.mv); got != c.want {
			t.Errorf("Legal(%v) = %v, want %v", c.mv, got, c.want)
		}
	}
}

func TestClampMV(t *testing.T) {
	p := texturedPlane(64, 64, 2)
	in := newInput(p, p, 0, 0, 15, 16) // corner block
	got := in.ClampMV(mvfield.FromFullPel(-10, -10))
	if !in.Legal(got) {
		t.Fatalf("clamped MV %v still illegal", got)
	}
	if got.X > 0 || got.Y > 0 {
		t.Fatalf("clamp moved too far: %v", got)
	}
	// In-range vectors must pass through unchanged.
	mv := mvfield.FromFullPel(5, 7)
	in2 := newInput(p, p, 24, 24, 15, 16)
	if in2.ClampMV(mv) != mv {
		t.Fatal("ClampMV altered a legal vector")
	}
}

func TestFSBMRecoversKnownShift(t *testing.T) {
	for _, d := range [][2]int{{0, 0}, {3, -2}, {-7, 5}, {15, 15}, {-15, -15}} {
		cur, ref := shiftedPair(d[0], d[1], 42)
		in := newInput(cur, ref, 40, 40, 15, 16)
		res := (&FSBM{}).Search(in)
		// Shift(dx,dy) moves content right/down: the block at (40,40) in
		// cur equals the block at (40-dx, 40-dy) in ref, so MV = (-dx,-dy).
		want := mvfield.FromFullPel(-d[0], -d[1])
		if res.MV != want {
			t.Errorf("shift %v: MV = %v, want %v", d, res.MV, want)
		}
		if res.SAD != 0 {
			t.Errorf("shift %v: SAD = %d, want 0", d, res.SAD)
		}
	}
}

func TestFSBMPointCountInterior(t *testing.T) {
	cur, ref := shiftedPair(1, 1, 7)
	in := newInput(cur, ref, 40, 40, 15, 16)
	res := (&FSBM{}).Search(in)
	if res.Points != 31*31+8 {
		t.Fatalf("interior FSBM points = %d, want 969", res.Points)
	}
	resInt := (&FSBM{NoHalfPel: true}).Search(in)
	if resInt.Points != 31*31 {
		t.Fatalf("integer FSBM points = %d, want 961", resInt.Points)
	}
}

func TestFSBMPointCountAtBorder(t *testing.T) {
	cur, ref := shiftedPair(0, 0, 9)
	in := newInput(cur, ref, 0, 0, 15, 16) // top-left corner block
	res := (&FSBM{NoHalfPel: true}).Search(in)
	if res.Points != 16*16 { // only u,v in [0,15]
		t.Fatalf("corner FSBM points = %d, want 256", res.Points)
	}
}

func TestFSBMMatchesBruteForceMinimum(t *testing.T) {
	cur := texturedPlane(96, 96, 5)
	ref := texturedPlane(96, 96, 6) // unrelated planes: nontrivial surface
	in := newInput(cur, ref, 40, 40, 8, 16)
	res := (&FSBM{NoHalfPel: true}).Search(in)
	bestSAD := 1 << 30
	for v := -8; v <= 8; v++ {
		for u := -8; u <= 8; u++ {
			s := metrics.SAD(cur, 40, 40, ref, 40+u, 40+v, 16, 16)
			if s < bestSAD {
				bestSAD = s
			}
		}
	}
	if res.SAD != bestSAD {
		t.Fatalf("FSBM SAD %d != brute force %d", res.SAD, bestSAD)
	}
}

func TestFSBMPrefersShortVectorOnTies(t *testing.T) {
	flat := frame.NewPlane(96, 96)
	flat.Fill(128)
	in := newInput(flat, flat, 40, 40, 15, 16)
	res := (&FSBM{}).Search(in)
	if res.MV != mvfield.Zero {
		t.Fatalf("constant plane MV = %v, want zero", res.MV)
	}
}

func TestHalfPelRefinementFindsSubpixelShift(t *testing.T) {
	ref := texturedPlane(96, 96, 13)
	ip := frame.Interpolate(ref)
	// cur = ref sampled at a (+1, -1) half-pel offset.
	cur := frame.NewPlane(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			cur.Set(x, y, ip.AtClamped(2*x+1, 2*y-1))
		}
	}
	in := newInput(cur, ref, 40, 40, 15, 16)
	res := (&FSBM{}).Search(in)
	if res.MV != (mvfield.MV{X: 1, Y: -1}) {
		t.Fatalf("MV = %v, want (+0.5,-0.5)", res.MV)
	}
	if res.SAD != 0 {
		t.Fatalf("SAD = %d, want 0", res.SAD)
	}
}

func TestPBMUsesTemporalPredictor(t *testing.T) {
	cur, ref := shiftedPair(9, -6, 21)
	in := newInput(cur, ref, 40, 40, 15, 16)
	prev := mvfield.NewField(6, 6)
	for by := 0; by < 6; by++ {
		for bx := 0; bx < 6; bx++ {
			prev.Set(bx, by, mvfield.FromFullPel(-9, 6)) // the true vector
		}
	}
	in.CurField = mvfield.NewField(6, 6)
	in.PrevField = prev
	in.MBX, in.MBY = 2, 2
	res := (&PBM{}).Search(in)
	if res.MV != mvfield.FromFullPel(-9, 6) {
		t.Fatalf("PBM MV = %v, want (-9,6)", res.MV)
	}
	if res.SAD != 0 {
		t.Fatalf("PBM SAD = %d", res.SAD)
	}
	if res.Points >= 100 {
		t.Fatalf("PBM evaluated %d points, expected a few dozen at most", res.Points)
	}
}

func TestPBMDescentFindsNearbyMotionWithoutPredictors(t *testing.T) {
	cur, ref := shiftedPair(2, 1, 33)
	in := newInput(cur, ref, 40, 40, 15, 16)
	in.CurField = mvfield.NewField(6, 6)
	in.MBX, in.MBY = 2, 2
	res := (&PBM{}).Search(in)
	if res.MV != mvfield.FromFullPel(-2, -1) {
		t.Fatalf("PBM MV = %v, want (-2,-1)", res.MV)
	}
}

func TestPBMBoundedComplexity(t *testing.T) {
	// Even on hostile content PBM must stay well below FSBM's cost.
	cur := texturedPlane(96, 96, 1)
	ref := texturedPlane(96, 96, 2)
	in := newInput(cur, ref, 40, 40, 15, 16)
	in.CurField = mvfield.NewField(6, 6)
	in.MBX, in.MBY = 2, 2
	res := (&PBM{}).Search(in)
	if res.Points > 60 {
		t.Fatalf("PBM points = %d, want ≤ 60", res.Points)
	}
	if !in.Legal(res.MV) {
		t.Fatalf("PBM returned illegal MV %v", res.MV)
	}
}

func TestPBMNoContextFallsBackToZeroNeighbourhood(t *testing.T) {
	cur, ref := shiftedPair(0, 0, 3)
	in := newInput(cur, ref, 40, 40, 15, 16)
	res := (&PBM{}).Search(in)
	if res.MV != mvfield.Zero || res.SAD != 0 {
		t.Fatalf("PBM on identical frames: MV %v SAD %d", res.MV, res.SAD)
	}
}

func TestFastSearchersRecoverModerateShift(t *testing.T) {
	searchers := []Searcher{&TSS{}, &FSS{}, &Diamond{}, &CrossDiamond{}}
	cur, ref := shiftedPair(4, 3, 55)
	want := mvfield.FromFullPel(-4, -3)
	for _, s := range searchers {
		in := newInput(cur, ref, 40, 40, 15, 16)
		res := s.Search(in)
		if res.MV != want {
			t.Errorf("%s: MV = %v, want %v", s.Name(), res.MV, want)
		}
		if res.SAD != 0 {
			t.Errorf("%s: SAD = %d", s.Name(), res.SAD)
		}
		if res.Points >= 200 {
			t.Errorf("%s: %d points, expected far fewer than FSBM's 969", s.Name(), res.Points)
		}
	}
}

func TestAllSearchersReturnLegalVectors(t *testing.T) {
	searchers := []Searcher{&FSBM{}, &PBM{}, &TSS{}, &FSS{}, &Diamond{}, &CrossDiamond{}}
	cur := texturedPlane(96, 96, 71)
	ref := texturedPlane(96, 96, 72)
	for _, s := range searchers {
		for _, anchor := range [][2]int{{0, 0}, {80, 80}, {0, 80}, {40, 0}} {
			in := newInput(cur, ref, anchor[0], anchor[1], 15, 16)
			in.CurField = mvfield.NewField(6, 6)
			res := s.Search(in)
			if !in.Legal(res.MV) {
				t.Errorf("%s at %v: illegal MV %v", s.Name(), anchor, res.MV)
			}
			if res.Points <= 0 {
				t.Errorf("%s at %v: nonpositive point count %d", s.Name(), anchor, res.Points)
			}
			// The reported SAD must equal the actual SAD at the vector.
			if got := in.SAD(res.MV); got != res.SAD {
				t.Errorf("%s at %v: reported SAD %d != actual %d", s.Name(), anchor, res.SAD, got)
			}
		}
	}
}

func TestSearcherNames(t *testing.T) {
	if (&FSBM{}).Name() != "FSBM" || (&FSBM{NoHalfPel: true}).Name() != "FSBM-int" {
		t.Fatal("FSBM names wrong")
	}
	if (&PBM{}).Name() != "PBM" || (&TSS{}).Name() != "TSS" || (&FSS{}).Name() != "4SS" {
		t.Fatal("searcher names wrong")
	}
	if (&Diamond{}).Name() != "DS" || (&CrossDiamond{}).Name() != "CDS" {
		t.Fatal("diamond names wrong")
	}
}

func TestCollectDeviationCountsAllCandidates(t *testing.T) {
	cur, ref := shiftedPair(2, 2, 77)
	in := newInput(cur, ref, 40, 40, 15, 16)
	var dev metrics.Deviation
	in.Collect = &dev
	res := (&FSBM{NoHalfPel: true}).Search(in)
	if dev.N() != res.Points {
		t.Fatalf("deviation recorded %d candidates, points %d", dev.N(), res.Points)
	}
	if dev.Min() != res.SAD {
		t.Fatalf("deviation min %d != best SAD %d", dev.Min(), res.SAD)
	}
	if dev.Value() <= 0 {
		t.Fatal("deviation must be positive on a textured block")
	}
}

func TestFSBMDegenerateSmallFrame(t *testing.T) {
	// A frame exactly one block wide: only the zero vector is legal.
	p := texturedPlane(16, 16, 4)
	in := newInput(p, p, 0, 0, 15, 16)
	res := (&FSBM{}).Search(in)
	if res.MV != mvfield.Zero || res.SAD != 0 {
		t.Fatalf("degenerate search: MV %v SAD %d", res.MV, res.SAD)
	}
}

func TestPixelDecimationComposesWithSearchers(t *testing.T) {
	// Decimated matching must still recover exact global shifts with any
	// search pattern, at unchanged point counts.
	cur, ref := shiftedPair(5, -3, 123)
	want := mvfield.FromFullPel(-5, 3)
	for _, s := range []Searcher{&FSBM{}, &TSS{}, &Diamond{}} {
		full := newInput(cur, ref, 40, 40, 15, 16)
		deci := newInput(cur, ref, 40, 40, 15, 16)
		deci.PixelDecimation = true
		rFull := s.Search(full)
		rDeci := s.Search(deci)
		if rDeci.MV != want {
			t.Errorf("%s decimated: MV %v, want %v", s.Name(), rDeci.MV, want)
		}
		if rDeci.Points != rFull.Points {
			t.Errorf("%s: decimation changed point count %d -> %d", s.Name(), rFull.Points, rDeci.Points)
		}
		if rDeci.SAD != 0 {
			t.Errorf("%s decimated: SAD %d", s.Name(), rDeci.SAD)
		}
	}
}

func TestPixelDecimationScaleComparable(t *testing.T) {
	// The ×4 scaling keeps decimated SADs within ~2x of the full SAD on
	// noise, so ACBM's thresholds remain meaningful.
	cur := texturedPlane(96, 96, 200)
	ref := texturedPlane(96, 96, 201)
	full := newInput(cur, ref, 40, 40, 15, 16)
	deci := newInput(cur, ref, 40, 40, 15, 16)
	deci.PixelDecimation = true
	f := full.SAD(mvfield.Zero)
	d := deci.SAD(mvfield.Zero)
	if d < f/2 || d > 2*f {
		t.Fatalf("decimated SAD %d not comparable to full %d", d, f)
	}
}
