package search

import "repro/internal/mvfield"

// Cross-layer motion seeding for the simulcast ladder: a motion field
// found at one resolution is a near-free prior for the rung below it. A
// LayerSeed contributes extra predictor candidates to PBM's step 1; like
// every predictor they are just probes — clamped, full-pel snapped and
// evaluated by SAD — so the winning vector (and with it the bitstream)
// remains a pure function of the pixel data and the candidate set, never
// of scheduling. When a seed is present PBM drops the temporal predictors
// (the rung above's field already carries that history at better
// accuracy), which is where the points/block saving comes from.

// MaxSeeds caps the candidates one LayerSeed may contribute per block.
const MaxSeeds = 4

// LayerSeed supplies cross-layer motion candidates for block (mbx, mby)
// of the layer being searched: up to MaxSeeds vectors in mv[:n].
// Implementations must be safe for concurrent use (wavefront workers call
// them in parallel). The array-by-value signature keeps the caller's
// candidate buffer off the heap — an appended-slice variant would escape
// PBM's stack buffer on every search, seeded or not.
type LayerSeed interface {
	Seeds(mbx, mby int) (mv [MaxSeeds]mvfield.MV, n int)
}

// FieldSeed seeds a layer from the motion field of the rung 2^Shift× its
// size: the candidates for a macroblock are the (scaled) vectors of the
// corner blocks of its collocated group in the upper field. The field
// must be final (fully analysed) — the ladder's one-frame lag guarantees
// that.
type FieldSeed struct {
	Field *mvfield.Field
	// Shift is the log2 resolution ratio between the seeding layer and
	// the seeded one (1 for adjacent 2:1 rungs).
	Shift uint
}

// Seeds implements LayerSeed. Macroblock (mbx, mby) at the lower
// resolution covers the 2^Shift × 2^Shift collocated block group of the
// upper layer; the four corner vectors of that group, divided by the
// resolution ratio (half-pel components, truncated toward zero like the
// full-pel snap), cover the group's motion spread with at most four
// probes. Duplicates within the group are dropped.
func (s *FieldSeed) Seeds(mbx, mby int) (mv [MaxSeeds]mvfield.MV, n int) {
	if s == nil || s.Field == nil {
		return mv, 0
	}
	g := 1 << s.Shift
	x0, y0 := mbx<<s.Shift, mby<<s.Shift
	div := int(1) << s.Shift
	for _, c := range [4][2]int{{0, 0}, {g - 1, 0}, {0, g - 1}, {g - 1, g - 1}} {
		ux, uy := x0+c[0], y0+c[1]
		if !s.Field.Known(ux, uy) {
			continue
		}
		up := s.Field.At(ux, uy)
		m := mvfield.MV{X: up.X / div, Y: up.Y / div}
		dup := false
		for _, v := range mv[:n] {
			if v == m {
				dup = true
				break
			}
		}
		if !dup {
			mv[n] = m
			n++
		}
	}
	return mv, n
}
