package search

import (
	"testing"

	"repro/internal/mvfield"
)

func TestFieldSeedScaling(t *testing.T) {
	// Upper field 4×4 (2:1 above a 2×2 layer): block (1,1) of the lower
	// layer collocates with the upper group (2..3, 2..3).
	upper := mvfield.NewField(4, 4)
	upper.Set(2, 2, mvfield.MV{X: 8, Y: -6})
	upper.Set(3, 2, mvfield.MV{X: 8, Y: -6}) // duplicate after scaling
	upper.Set(2, 3, mvfield.MV{X: -3, Y: 5}) // odd components truncate toward zero
	upper.Set(3, 3, mvfield.MV{X: 0, Y: 0})

	s := &FieldSeed{Field: upper, Shift: 1}
	got, n := s.Seeds(1, 1)
	want := []mvfield.MV{{X: 4, Y: -3}, {X: -1, Y: 2}, {X: 0, Y: 0}}
	if n != len(want) {
		t.Fatalf("Seeds = %v (n=%d), want %v", got[:n], n, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Seeds[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// Unknown blocks contribute no seeds.
	empty := &FieldSeed{Field: mvfield.NewField(4, 4), Shift: 1}
	if out, n := empty.Seeds(0, 0); n != 0 {
		t.Fatalf("unknown blocks contributed seeds: %v", out[:n])
	}
}

// TestPBMSeedGuidesSearch: with a seed pointing at the true displacement,
// PBM finds it from a cold field (no spatial/temporal history) — the seed
// is doing the work the temporal predictors normally do.
func TestPBMSeedGuidesSearch(t *testing.T) {
	// Shift(6,-4) moves content right/up: the true MV is (-6,+4).
	cur, ref := shiftedPair(6, -4, 21)
	upper := mvfield.NewField(12, 12)
	for by := 0; by < 12; by++ {
		for bx := 0; bx < 12; bx++ {
			// Upper-layer vectors are twice the lower layer's motion.
			upper.Set(bx, by, mvfield.FromFullPel(-12, 8))
		}
	}
	p := &PBM{}
	in := newInput(cur, ref, 32, 32, 15, 16)
	in.CurField = mvfield.NewField(6, 6)
	in.MBX, in.MBY = 2, 2
	in.Seed = &FieldSeed{Field: upper, Shift: 1}
	res := p.Search(in)
	if want := mvfield.FromFullPel(-6, 4); res.MV != want {
		t.Fatalf("seeded PBM found %v, want %v", res.MV, want)
	}
	if res.SAD != 0 {
		t.Fatalf("seeded PBM SAD = %d, want 0", res.SAD)
	}

	// Determinism: the same seeded problem yields the identical result.
	in2 := newInput(cur, ref, 32, 32, 15, 16)
	in2.CurField = mvfield.NewField(6, 6)
	in2.MBX, in2.MBY = 2, 2
	in2.Seed = &FieldSeed{Field: upper, Shift: 1}
	if res2 := p.Search(in2); res2 != res {
		t.Fatalf("seeded PBM not deterministic: %+v vs %+v", res2, res)
	}
}
