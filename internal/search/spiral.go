package search

import (
	"sort"
	"sync"

	"repro/internal/mvfield"
)

// Spiral scan order for the full search: candidates are visited centre
// outward (ascending L1 vector length) instead of in raster order, so the
// running minimum — and with it SADCapped's early-termination cap — drops
// after a handful of candidates instead of after half the raster. Real
// motion is overwhelmingly short, so the first rings almost always contain
// a near-minimal SAD and the remaining ~900 candidates of a ±15 search
// abort on their first rows.
//
// The scan order is chosen so the reported winner is IDENTICAL to the
// raster scan's, not merely equal in SAD. better() breaks SAD ties toward
// the shorter L1 vector, so the final winner of any scan order is the
// first-visited candidate among those minimising (SAD, L1) lexically.
// Visiting candidates sorted by (L1, then raster position v, u) makes that
// first-visited candidate the raster-minimal one — exactly the candidate
// the raster loop would have kept. Points counts are unchanged because the
// candidate set is unchanged.
var spiralCache sync.Map // search range (int) → []mvfield.MV in scan order

// spiralOffsets returns all (2r+1)² full-pel candidate vectors for ±r,
// sorted centre-outward: ascending |u|+|v|, ties in raster (v, u) order.
func spiralOffsets(r int) []mvfield.MV {
	if v, ok := spiralCache.Load(r); ok {
		return v.([]mvfield.MV)
	}
	n := 2*r + 1
	offs := make([]mvfield.MV, 0, n*n)
	for v := -r; v <= r; v++ {
		for u := -r; u <= r; u++ {
			offs = append(offs, mvfield.FromFullPel(u, v))
		}
	}
	sort.SliceStable(offs, func(i, j int) bool {
		return offs[i].L1() < offs[j].L1()
	})
	actual, _ := spiralCache.LoadOrStore(r, offs)
	return actual.([]mvfield.MV)
}
