package search

import (
	"math/rand"
	"testing"

	"repro/internal/frame"
	"repro/internal/mvfield"
)

// rasterFSBM is the seed's raster-order full search, kept as the reference
// the spiral scan must match exactly (winner, SAD and Points), including
// the capped-SAD early-termination interplay with better().
func rasterFSBM(in *Input) Result {
	best := mvfield.Zero
	bestSAD := -1
	pts := 0
	for v := -in.Range; v <= in.Range; v++ {
		for u := -in.Range; u <= in.Range; u++ {
			mv := mvfield.FromFullPel(u, v)
			if !in.Legal(mv) {
				continue
			}
			pts++
			if bestSAD < 0 {
				best, bestSAD = mv, in.SAD(mv)
				continue
			}
			s := in.SADCapped(mv, bestSAD)
			if better(s, mv, bestSAD, best) {
				best, bestSAD = mv, s
			}
		}
	}
	if bestSAD < 0 {
		return Result{MV: mvfield.Zero, SAD: in.SAD(mvfield.Zero), Points: 1}
	}
	return Result{MV: best, SAD: bestSAD, Points: pts}
}

func TestSpiralOffsetsOrder(t *testing.T) {
	for _, r := range []int{1, 4, 15} {
		offs := spiralOffsets(r)
		n := 2*r + 1
		if len(offs) != n*n {
			t.Fatalf("range %d: %d offsets, want %d", r, len(offs), n*n)
		}
		seen := make(map[mvfield.MV]bool, len(offs))
		for i, mv := range offs {
			if seen[mv] {
				t.Fatalf("range %d: duplicate offset %v", r, mv)
			}
			seen[mv] = true
			if i > 0 && offs[i-1].L1() > mv.L1() {
				t.Fatalf("range %d: offsets not sorted centre-outward at %d: %v after %v", r, i, mv, offs[i-1])
			}
			if i > 0 && offs[i-1].L1() == mv.L1() {
				// Within one ring the raster (v, then u) order must hold so
				// tie winners match the raster scan.
				if offs[i-1].Y > mv.Y || (offs[i-1].Y == mv.Y && offs[i-1].X > mv.X) {
					t.Fatalf("range %d: ring order not raster at %d: %v after %v", r, i, mv, offs[i-1])
				}
			}
		}
	}
}

// TestSpiralMatchesRaster drives both scans over random content —
// including flat regions that maximise SAD ties — at interior and border
// blocks, and requires bit-identical results.
func TestSpiralMatchesRaster(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	flat := frame.NewPlane(96, 96) // all-zero: every candidate ties
	noisy := frame.NewPlane(96, 96)
	rng.Read(noisy.Pix)
	quant := frame.NewPlane(96, 96) // coarse blocks: many partial ties
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			quant.Set(x, y, uint8((x/8+y/8)%3*40))
		}
	}
	for _, tc := range []struct {
		name     string
		cur, ref *frame.Plane
	}{
		{"flat", flat, flat},
		{"noisy", noisy, noisy},
		{"quantised", quant, quant},
		{"cross", noisy, quant},
	} {
		ip := frame.Interpolate(tc.ref)
		for _, anchor := range [][2]int{{0, 0}, {40, 40}, {80, 80}, {16, 0}, {0, 64}} {
			for _, rng := range []int{4, 15} {
				in := &Input{
					Cur: tc.cur, Ref: tc.ref, RefI: ip,
					BX: anchor[0], BY: anchor[1], W: 16, H: 16, Range: rng,
				}
				for _, nhp := range []bool{true, false} {
					f := &FSBM{NoHalfPel: nhp}
					got := f.Search(in)
					in2 := *in
					want := rasterFSBM(&in2)
					if !nhp {
						mv, sad, extra := refineHalfPel(&in2, want.MV, want.SAD)
						want = Result{MV: mv, SAD: sad, Points: want.Points + extra}
					}
					if got != want {
						t.Errorf("%s anchor=%v range=%d nohalfpel=%v: spiral %+v != raster %+v",
							tc.name, anchor, rng, nhp, got, want)
					}
				}
			}
		}
	}
}
