package search

import "repro/internal/mvfield"

// TSS is the three-step search of Liu, Zeng and Liou [3]: a logarithmic
// coarse-to-fine pattern search evaluating the centre and its 8 neighbours
// at halving step sizes. Included as a classical fast-search baseline.
type TSS struct {
	NoHalfPel bool
}

// Name implements Searcher.
func (t *TSS) Name() string { return "TSS" }

// Search implements Searcher.
func (t *TSS) Search(in *Input) Result {
	var visited visitedSet
	pts := 0
	eval := func(mv mvfield.MV) (int, bool) {
		if !in.Legal(mv) || visited.seen(mv) {
			return 0, false
		}
		visited.add(mv)
		pts++
		return in.SAD(mv), true
	}

	// Initial step: the largest power of two ≤ max(Range/2, 1).
	step := 1
	for 2*step <= (in.Range+1)/2 {
		step *= 2
	}
	best := mvfield.Zero
	bestSAD := in.SAD(best)
	visited.add(best)
	pts++
	for step >= 1 {
		center := best
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				mv := center.Add(mvfield.FromFullPel(dx*step, dy*step))
				if mv.Linf() > 2*in.Range {
					continue
				}
				if s, ok := eval(mv); ok && better(s, mv, bestSAD, best) {
					best, bestSAD = mv, s
				}
			}
		}
		step /= 2
	}
	if !t.NoHalfPel {
		mv, sad, extra := refineHalfPel(in, best, bestSAD)
		best, bestSAD, pts = mv, sad, pts+extra
	}
	return Result{MV: best, SAD: bestSAD, Points: pts}
}
