package server

import (
	"encoding/json"
	"net/http"

	"repro/internal/obs"
)

// Flight-recorder debug endpoints. All three serve JSON and observe
// live state without pausing it: listings and traces are lock-free
// snapshots of the per-session atomic rings, so hitting them under
// full load perturbs nothing.
//
//	/debug/vcodec/sessions      — live + recently completed sessions
//	/debug/vcodec/trace?id=X    — one session's per-frame timeline
//	/debug/vcodec/qos           — the QoS controller's decision audit

// handleDebugSessions lists live sessions and the retained ring of
// completed ones (newest first), each as a one-line summary keyed by
// trace ID.
func (s *Server) handleDebugSessions(w http.ResponseWriter, r *http.Request) {
	live, completed := s.obs.Sessions()
	if live == nil {
		live = []obs.Summary{}
	}
	if completed == nil {
		completed = []obs.Summary{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"live":      live,
		"completed": completed,
	})
}

// handleDebugTrace serves one session's flight record — identity,
// summary and the per-frame phase timeline still held in its ring — by
// trace ID. Unknown (or aged-out) IDs return 404.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := obs.SanitizeTraceID(r.URL.Query().Get("id"))
	if id == "" {
		http.Error(w, "missing or malformed id parameter", http.StatusBadRequest)
		return
	}
	rec := s.obs.Lookup(id)
	if rec == nil {
		http.Error(w, "unknown trace id (session may have aged out of the completed ring)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rec.Snapshot())
}

// handleDebugQos serves the QoS controller's per-tick decision audit:
// what the controller saw, what it scored, and what it did, oldest
// first across the retained window.
func (s *Server) handleDebugQos(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.qos == nil {
		json.NewEncoder(w).Encode(map[string]any{
			"enabled": false,
			"ticks":   []QosAuditEntry{},
		})
		return
	}
	ticks := s.qos.auditSnapshot()
	if ticks == nil {
		ticks = []QosAuditEntry{}
	}
	json.NewEncoder(w).Encode(map[string]any{
		"enabled": true,
		"ticks":   ticks,
	})
}
