package server

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/obs"
)

// Simulcast serving: /encode?ladder=WxH@kbps,... ingests the source once
// and streams every rung of the ladder back interleaved, each record
// tagged with its rung index (LadderContentType framing). The heavy
// lifting — downscale chain, cross-layer motion seeding, per-rung rate
// control — lives in codec.LadderStream; this file is the transport and
// observability shim around it.
//
// Ladder sessions are exempt from the adaptive QoS controller: the rungs
// ARE the quality ladder, and a client that wants a degraded stream picks
// a lower rung instead of having the controller reshape all of them. A
// pinned qoslevel still applies (uniformly, to every rung), keeping the
// stream byte-verifiable against an offline EncodeLadder run.

// encodeLadderSession runs one admitted simulcast session.
func (s *Server) encodeLadderSession(ctx context.Context, w http.ResponseWriter, r *http.Request, cfg codec.Config, opts sessionOpts, rec *obs.FlightRecorder, traceID string) {
	y4m, err := frame.NewY4MReader(r.Body)
	if err != nil {
		rec.Finish(err)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if sz, top := y4m.Size(), opts.ladder[0].Size; sz != top {
		err := fmt.Errorf("source is %dx%d, ladder top rung wants %dx%d", sz.W, sz.H, top.W, top.H)
		rec.Finish(err)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if fps := y4m.FPS(); fps > 0 {
		cfg.FPS = fps
	}
	cfg.Pool = s.pool
	cfg.Pipeline = true
	if opts.batch {
		cfg.Priority = codec.PriorityBatch
	}
	qosLevel := 0
	if opts.pinned >= 0 {
		qosLevel = opts.pinned
		rec.SetQosLevel(qosLevel)
	}

	// One encoder config per rung: shared knobs from the query, per-rung
	// bitrate target from the spec, and — the Rung contract — a fresh
	// searcher instance each, since the rungs analyse on parallel
	// goroutines.
	nR := len(opts.ladder)
	rungs := make([]codec.Rung, nR)
	for i, spec := range opts.ladder {
		rcfg := cfg
		rcfg.TargetKbps = spec.TargetKbps
		searcher, err := opts.newSearcher()
		if err != nil {
			rec.Finish(err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rcfg.Searcher = searcher
		if opts.pinned >= 0 {
			rcfg = ApplyQosLevel(rcfg, opts.pinned)
		}
		rcfg.Observer = &ladderRungObserver{rec: rec, h: &s.hist, rung: i, rungs: nR}
		rungs[i] = codec.Rung{Size: spec.Size, Cfg: rcfg}
	}

	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()

	w.Header().Set("Content-Type", LadderContentType)
	w.Header().Set("Trailer", strings.Join([]string{TrailerFrames, TrailerRungs, TrailerQosLevel, TrailerTrace, TrailerError}, ", "))

	begin := time.Now()
	// Emit-side state: LadderStream serialises the emit callback across
	// rung goroutines, so lastEmit and the writer need no further locking.
	var lastEmit time.Time
	pw := codec.NewLadderPacketWriter(w)
	l, err := codec.NewLadderStream(rungs, func(rung int, p codec.Packet) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("client gone: %w", err)
		}
		emitStart := time.Now()
		if err := pw.WritePacket(rung, p.Index, p.Data); err != nil {
			return err
		}
		if err := rc.Flush(); err != nil {
			return err
		}
		emitDur := time.Since(emitStart)
		s.hist.emit.Observe(emitDur)
		s.m.packetsTotal.Add(1)
		s.m.bytesOut.Add(int64(len(p.Data)))
		if p.Index > 0 {
			s.m.framesTotal.Add(1)
			rec.FrameEmitted((p.Index-1)*nR+rung, emitDur)
			now := time.Now()
			if lastEmit.IsZero() {
				s.hist.firstPacket.Observe(now.Sub(begin))
			} else {
				s.hist.frameGap.Observe(now.Sub(lastEmit))
			}
			lastEmit = now
		}
		return nil
	})
	if err != nil {
		rec.Finish(err)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	frames := 0
	var sessionErr error
	for {
		if err := ctx.Err(); err != nil {
			sessionErr = fmt.Errorf("client gone: %w", err)
			break
		}
		readStart := time.Now()
		f, err := y4m.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			sessionErr = err
			break
		}
		readDur := time.Since(readStart)
		rec.FrameRead(frames*nR, readDur) // source read is a rung-0 event
		s.hist.read.Observe(readDur)
		if s.cfg.MaxFramesPerSession > 0 && frames >= s.cfg.MaxFramesPerSession {
			sessionErr = fmt.Errorf("session frame cap (%d) exceeded", s.cfg.MaxFramesPerSession)
			break
		}
		encStart := time.Now()
		if err := l.EncodeFrame(f); err != nil {
			sessionErr = err
			break
		}
		if s.qos != nil {
			s.qos.observe(time.Since(encStart), 0)
		}
		frames++
	}
	stats, closeErr := l.Close()
	if sessionErr == nil {
		sessionErr = closeErr
	}
	s.m.sessionNs.Add(time.Since(begin).Nanoseconds())

	w.Header().Set(TrailerFrames, strconv.Itoa(frames))
	parts := make([]string, 0, nR)
	for i, st := range stats {
		n, psnr, kbps := 0, 0.0, 0.0
		if st != nil {
			n, psnr, kbps = len(st.Frames), st.AvgPSNRY(), st.BitrateKbps()
		}
		sz := opts.ladder[i].Size
		parts = append(parts, fmt.Sprintf("%dx%d:%d:%.2f:%.1f", sz.W, sz.H, n, psnr, kbps))
	}
	w.Header().Set(TrailerRungs, strings.Join(parts, ";"))
	w.Header().Set(TrailerQosLevel, strconv.Itoa(qosLevel))
	w.Header().Set(TrailerTrace, traceID)
	rec.Finish(sessionErr)
	if sessionErr != nil {
		s.m.sessionsFailed.Add(1)
		w.Header().Set(TrailerError, sessionErr.Error())
		log.Printf("ladder session %s failed after %d frames: %v", traceID, frames, sessionErr)
	}
}

// ladderRungObserver bridges one rung's codec.FrameObserver events into
// the session's shared flight recorder, keying slots as frame×rungs+rung
// so the trace endpoint can render a per-rung timeline. Rungs observe
// from their own goroutines; the recorder is lock-free throughout.
type ladderRungObserver struct {
	rec         *obs.FlightRecorder
	h           *serverHists
	rung, rungs int
}

func (o *ladderRungObserver) FrameAnalyzed(index int, wall, queueWait, maxStall time.Duration, intra bool, qp int) {
	o.rec.FrameAnalyzed(index*o.rungs+o.rung, wall, queueWait, maxStall, intra, qp)
	o.h.analysis.Observe(wall)
	if queueWait > 0 {
		o.h.queueWait.Observe(queueWait)
	}
}

func (o *ladderRungObserver) FrameWritten(index int, wall time.Duration, bits int) {
	o.rec.FrameWritten(index*o.rungs+o.rung, wall, bits)
	o.h.entropy.Observe(wall)
}
