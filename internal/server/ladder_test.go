package server

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/search"
	"repro/internal/video"
)

// readLadderPackets splits a rung-tagged response stream back into
// per-rung packet lists, checking per-rung index ordering.
func readLadderPackets(t *testing.T, r io.Reader, nRungs int) [][][]byte {
	t.Helper()
	pkts := make([][][]byte, nRungs)
	lr := codec.NewLadderPacketReader(r)
	for {
		rung, idx, data, err := lr.ReadPacket()
		if err == io.EOF {
			return pkts
		}
		if err != nil {
			t.Fatalf("ladder record: %v", err)
		}
		if rung < 0 || rung >= nRungs {
			t.Fatalf("rung %d out of range", rung)
		}
		if idx != len(pkts[rung]) {
			t.Fatalf("rung %d: packet index %d, want %d", rung, idx, len(pkts[rung]))
		}
		pkts[rung] = append(pkts[rung], data)
	}
}

// TestServerLadderSession uploads one Y4M to /encode?ladder= and checks
// the interleaved response splits into per-rung streams byte-identical
// to an offline codec.EncodeLadder run, with the per-rung summary
// trailer in place.
func TestServerLadderSession(t *testing.T) {
	top := frame.Size{W: 64, H: 64}
	frames := video.Generate(video.Foreman, top, 6, 7)
	_, ts := newTestServer(t, Config{})

	resp, err := http.Post(ts.URL+"/encode?qp=14&me=pbm&ladder=64x64,32x32,16x16",
		"video/x-yuv4mpeg", bytes.NewReader(y4mBody(t, frames)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != LadderContentType {
		t.Fatalf("content type %q, want %q", ct, LadderContentType)
	}
	got := readLadderPackets(t, resp.Body, 3)

	// Trailers land after the body is drained.
	if tf := resp.Trailer.Get(TrailerFrames); tf != "6" {
		t.Errorf("frames trailer %q, want 6", tf)
	}
	if te := resp.Trailer.Get(TrailerError); te != "" {
		t.Fatalf("error trailer: %s", te)
	}
	rungsTrailer := resp.Trailer.Get(TrailerRungs)
	parts := strings.Split(rungsTrailer, ";")
	if len(parts) != 3 {
		t.Fatalf("rungs trailer %q, want 3 entries", rungsTrailer)
	}
	for i, prefix := range []string{"64x64:6:", "32x32:6:", "16x16:6:"} {
		if !strings.HasPrefix(parts[i], prefix) {
			t.Errorf("rungs trailer entry %d = %q, want prefix %q", i, parts[i], prefix)
		}
	}

	// The served bytes must match the offline ladder encoder exactly.
	mkRung := func(sz frame.Size) codec.Rung {
		return codec.Rung{Size: sz, Cfg: codec.Config{
			Qp: 14, FPS: 30, Entropy: codec.EntropyExpGolomb, Searcher: &search.PBM{},
		}}
	}
	want, _, err := codec.EncodeLadder([]codec.Rung{
		mkRung(top), mkRung(frame.Size{W: 32, H: 32}), mkRung(frame.Size{W: 16, H: 16}),
	}, frames)
	if err != nil {
		t.Fatal(err)
	}
	for r := range want {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("rung %d: %d packets, offline %d", r, len(got[r]), len(want[r]))
		}
		for i := range want[r] {
			if !bytes.Equal(got[r][i], want[r][i]) {
				t.Fatalf("rung %d packet %d differs from offline EncodeLadder", r, i)
			}
		}
	}

	// Every rung decodes independently with the unmodified decoder.
	sizes := []frame.Size{top, {W: 32, H: 32}, {W: 16, H: 16}}
	for r, pkts := range got {
		dec, err := codec.NewPacketDecoder(pkts[0])
		if err != nil {
			t.Fatalf("rung %d header: %v", r, err)
		}
		if dec.Size() != sizes[r] {
			t.Fatalf("rung %d decodes as %v, want %v", r, dec.Size(), sizes[r])
		}
		for i, pkt := range pkts[1:] {
			if _, err := dec.DecodePacket(pkt); err != nil {
				t.Fatalf("rung %d frame %d: %v", r, i, err)
			}
		}
	}
}

// TestServerLadderBadRequests pins the fast-fail paths: malformed chains
// and a kbps query param (per-rung targets belong in the ladder spec).
func TestServerLadderBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, q := range []string{
		"ladder=64x64,48x48",     // not a 2:1 chain
		"ladder=65x64",           // not macroblock-aligned
		"ladder=64x64&kbps=300",  // kbps is per-rung in a ladder
		"ladder=64x64,32x32@abc", // bad rung bitrate
	} {
		resp, err := http.Post(ts.URL+"/encode?"+q, "video/x-yuv4mpeg", bytes.NewReader(nil))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}
