package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/frame"
	vmetrics "repro/internal/metrics"
	"repro/internal/obs"
)

// metrics are vcodecd's cumulative counters. Rates exposed on /metrics
// are derived from totals (frames / uptime, phase ns / frames), so a
// scraper can also rate() the raw totals itself.
type metrics struct {
	sessionsTotal    atomic.Int64 // admitted sessions
	sessionsRejected atomic.Int64 // 503s from admission control
	sessionsFailed   atomic.Int64 // sessions that ended with an error trailer
	framesTotal      atomic.Int64 // frame packets emitted
	packetsTotal     atomic.Int64 // all packets (header + frame)
	bytesOut         atomic.Int64 // packet payload bytes streamed
	analysisNs       atomic.Int64 // cumulative phase-1 wall clock
	entropyNs        atomic.Int64 // cumulative phase-2 wall clock
	sessionNs        atomic.Int64 // cumulative per-session wall clock

	// Rate-controlled sessions (kbps query param): target and achieved
	// bitrates accumulate in milli-kbps so a scraper can derive the mean
	// tracking ratio achieved/target.
	rateSessions          atomic.Int64
	rateTargetMilliKbps   atomic.Int64
	rateAchievedMilliKbps atomic.Int64
}

// handleHealthz reports liveness, the scheduler's occupancy and the QoS
// degradation level (the batch level — the deepest in force; a fronting
// gateway uses it to prefer less-degraded backends). During drain it
// flips to 503 so load balancers stop routing here.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	active, queued := s.sched.counts()
	status := "ok"
	code := http.StatusOK
	if s.sched.isDraining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	qosLevel := 0
	if s.qos != nil {
		_, qosLevel, _ = s.qos.snapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":          status,
		"sessions_active": active,
		"sessions_queued": queued,
		"qos_level":       qosLevel,
		"uptime_seconds":  time.Since(s.start).Seconds(),
	})
}

// handleMetrics exposes the counters in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	active, queued := s.sched.counts()
	frames := s.m.framesTotal.Load()
	uptime := time.Since(s.start).Seconds()
	var fps, analysisMs, entropyMs float64
	if uptime > 0 {
		fps = float64(frames) / uptime
	}
	if frames > 0 {
		analysisMs = float64(s.m.analysisNs.Load()) / float64(frames) / 1e6
		entropyMs = float64(s.m.entropyNs.Load()) / float64(frames) / 1e6
	}
	draining := 0
	if s.sched.isDraining() {
		draining = 1
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	// Every sample ships with HELP and TYPE so strict exposition-format
	// parsers (and the metrics tests) accept the page: counters for the
	// monotonic _total series, gauges for point-in-time values.
	g := func(name, typ, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, v)
	}
	// Build/host context as labels (value always 1, the Prometheus
	// *_info convention): which SAD kernel tier this process dispatches
	// to, so a fleet dashboard can spot a node that silently fell back
	// to scalar — a 5–10× throughput cliff with no error anywhere.
	fmt.Fprintf(w, "# HELP vcodecd_build_info build and host context, value is always 1\n# TYPE vcodecd_build_info gauge\n")
	fmt.Fprintf(w, "vcodecd_build_info{goarch=%q,gomaxprocs=\"%d\",kernel_isa=%q,kernel_isas=%q} 1\n",
		runtime.GOARCH, runtime.GOMAXPROCS(0),
		vmetrics.ActiveKernelISA(), strings.Join(vmetrics.KernelISAs(), ","))
	g("vcodecd_sessions_active", "gauge", "sessions currently encoding", active)
	g("vcodecd_sessions_queued", "gauge", "sessions waiting for admission", queued)
	g("vcodecd_sessions_total", "counter", "sessions admitted since start", s.m.sessionsTotal.Load())
	g("vcodecd_sessions_rejected_total", "counter", "sessions rejected by admission control", s.m.sessionsRejected.Load())
	g("vcodecd_sessions_failed_total", "counter", "sessions that ended with an error", s.m.sessionsFailed.Load())
	g("vcodecd_frames_total", "counter", "frame packets emitted", frames)
	g("vcodecd_packets_total", "counter", "packets emitted (header + frame)", s.m.packetsTotal.Load())
	g("vcodecd_response_bytes_total", "counter", "packet payload bytes streamed to clients", s.m.bytesOut.Load())
	g("vcodecd_analysis_seconds_total", "counter", "cumulative macroblock-analysis wall clock", float64(s.m.analysisNs.Load())/1e9)
	g("vcodecd_entropy_seconds_total", "counter", "cumulative entropy-coding wall clock", float64(s.m.entropyNs.Load())/1e9)
	g("vcodecd_session_seconds_total", "counter", "cumulative session wall clock", float64(s.m.sessionNs.Load())/1e9)
	g("vcodecd_frames_per_second", "gauge", "frame packets per second of uptime", fps)
	g("vcodecd_analysis_ms_per_frame", "gauge", "mean analysis latency per frame", analysisMs)
	g("vcodecd_entropy_ms_per_frame", "gauge", "mean entropy latency per frame", entropyMs)
	g("vcodecd_rate_sessions_total", "counter", "completed sessions that ran bitrate control", s.m.rateSessions.Load())
	g("vcodecd_rate_target_kbps_total", "counter", "sum of kbps targets across rate-controlled sessions", float64(s.m.rateTargetMilliKbps.Load())/1000)
	g("vcodecd_rate_achieved_kbps_total", "counter", "sum of achieved kbps across rate-controlled sessions", float64(s.m.rateAchievedMilliKbps.Load())/1000)
	g("vcodecd_pool_workers", "gauge", "shared analysis pool size", s.pool.Size())
	g("vcodecd_draining", "gauge", "1 while graceful shutdown is draining sessions", draining)

	live, batch := s.sched.countsByClass()
	g("vcodecd_sessions_active_live", "gauge", "live-priority sessions currently encoding", live)
	g("vcodecd_sessions_active_batch", "gauge", "batch-priority sessions currently encoding", batch)
	if s.qos != nil {
		liveLevel, batchLevel, perLevel := s.qos.snapshot()
		g("vcodecd_qos_level", "gauge", "current QoS degradation level (batch tier — the deepest in force)", batchLevel)
		g("vcodecd_qos_level_live", "gauge", "current QoS degradation level of live-priority sessions", liveLevel)
		g("vcodecd_qos_degrades_total", "counter", "controller degradation steps taken", s.qos.degrades.Load())
		g("vcodecd_qos_restores_total", "counter", "controller restoration steps taken", s.qos.restores.Load())
		g("vcodecd_qos_actuations_total", "counter", "per-session level changes applied at frame hand-off", s.qos.actuations.Load())
		fmt.Fprintf(w, "# HELP vcodecd_qos_sessions adaptive sessions by class and applied QoS level\n# TYPE vcodecd_qos_sessions gauge\n")
		for cls, name := range []string{"live", "batch"} {
			for level, n := range perLevel[cls] {
				fmt.Fprintf(w, "vcodecd_qos_sessions{class=%q,level=\"%d\"} %d\n", name, level, n)
			}
		}
	}

	// Frame-plane pool efficiency per size/apron bucket class. A rising
	// miss rate on a hot class means plane allocations leaked back into
	// the steady state — ladder sessions churn downscaled planes hard, so
	// this is the first gauge to move when recycling regresses.
	poolStats := frame.PoolStats()
	fmt.Fprintf(w, "# HELP vcodecd_frame_pool_hits_total plane-pool checkouts served from the pool\n# TYPE vcodecd_frame_pool_hits_total counter\n")
	for _, c := range poolStats {
		fmt.Fprintf(w, "vcodecd_frame_pool_hits_total{w=\"%d\",h=\"%d\",apron=\"%d\"} %d\n", c.W, c.H, c.Apron, c.Hits)
	}
	fmt.Fprintf(w, "# HELP vcodecd_frame_pool_misses_total plane-pool checkouts that allocated fresh\n# TYPE vcodecd_frame_pool_misses_total counter\n")
	for _, c := range poolStats {
		fmt.Fprintf(w, "vcodecd_frame_pool_misses_total{w=\"%d\",h=\"%d\",apron=\"%d\"} %d\n", c.W, c.H, c.Apron, c.Misses)
	}

	// Latency distributions from the flight-recorder substrate.
	for _, h := range []*obs.Histogram{
		s.hist.firstPacket, s.hist.frameGap, s.hist.read,
		s.hist.analysis, s.hist.entropy, s.hist.emit, s.hist.queueWait,
	} {
		h.WriteProm(w)
	}
}
