package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/frame"
	"repro/internal/obs"
	"repro/internal/video"
)

// scrapeMetrics fetches and returns /metrics.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// parseExposition is a strict-enough Prometheus text-format 0.0.4 reader
// for the tests: it returns sample name → value (labelled samples keyed
// by full series) and the HELP/TYPE metadata per metric family, failing
// the test on any malformed line or any sample whose family lacks
// HELP or TYPE metadata *above* it.
func parseExposition(t *testing.T, text string) (samples map[string]float64, types map[string]string) {
	t.Helper()
	samples = map[string]float64{}
	types = map[string]string{}
	help := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Fatalf("malformed HELP line %q", line)
			}
			help[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		series, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		family := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			family = series[:i]
		}
		// Histogram child series belong to the base family's metadata.
		base := family
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(family, suf); ok && types[b] == "histogram" {
				base = b
			}
		}
		if !help[base] {
			t.Errorf("series %q has no HELP line", series)
		}
		if _, ok := types[base]; !ok {
			t.Errorf("series %q has no TYPE line", series)
		}
		samples[series] = v
	}
	return samples, types
}

// TestMetricsExpositionUnderLoad drives 8 concurrent sessions and then
// checks the whole observability surface: /metrics parses with HELP and
// TYPE on every family, counters are monotonic across scrapes,
// histograms are sane (cumulative buckets, count==+Inf, observations
// present); the trace trailer round-trips into /debug/vcodec/trace with
// a frame count matching the trailer; and /debug/vcodec/sessions and
// /debug/vcodec/qos respond.
func TestMetricsExpositionUnderLoad(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.SQCIF, 6, 7)
	body := y4mBody(t, frames)
	_, ts := newTestServer(t, Config{MaxSessions: 4})

	const sessions = 8
	traces := make([]string, sessions)
	trailerFrames := make([]int, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := ts.URL + "/encode?qp=16&me=acbm"
			if i%2 == 1 {
				url += "&priority=batch"
			}
			req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			if i == 0 {
				// One session supplies its own trace ID; the server must
				// honor it instead of minting.
				req.Header.Set(obs.TraceIDHeader, "client-chosen-trace-0")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			readPackets(t, resp.Body)
			traces[i] = resp.Trailer.Get(TrailerTrace)
			trailerFrames[i], _ = strconv.Atoi(resp.Trailer.Get(TrailerFrames))
			if resp.Trailer.Get(TrailerError) != "" {
				t.Errorf("session %d error: %s", i, resp.Trailer.Get(TrailerError))
			}
		}(i)
	}
	wg.Wait()

	if traces[0] != "client-chosen-trace-0" {
		t.Errorf("inbound trace ID not honored: got %q", traces[0])
	}

	// Scrape twice: parseability + metadata, then counter monotonicity.
	s1, types := parseExposition(t, scrapeMetrics(t, ts.URL))
	s2, _ := parseExposition(t, scrapeMetrics(t, ts.URL))
	for series, v1 := range s1 {
		family := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			family = series[:i]
		}
		if types[family] == "counter" {
			if v2, ok := s2[series]; ok && v2 < v1 {
				t.Errorf("counter %s went backwards: %v -> %v", series, v1, v2)
			}
		}
	}
	if got := s1["vcodecd_sessions_total"]; got < sessions {
		t.Errorf("vcodecd_sessions_total %v, want >= %d", got, sessions)
	}

	// Histogram sanity: the per-frame families saw every frame, buckets
	// are cumulative, and _count equals the +Inf bucket.
	for _, h := range []string{"vcodecd_analysis_seconds", "vcodecd_entropy_seconds", "vcodecd_emit_seconds", "vcodecd_first_packet_seconds"} {
		if types[h] != "histogram" {
			t.Errorf("%s TYPE %q, want histogram", h, types[h])
			continue
		}
		inf := s1[fmt.Sprintf("%s_bucket{le=\"+Inf\"}", h)]
		if inf == 0 {
			t.Errorf("%s has no observations", h)
		}
		if c := s1[h+"_count"]; c != inf {
			t.Errorf("%s_count %v != +Inf bucket %v", h, c, inf)
		}
	}
	wantFrames := float64(sessions * len(frames))
	if got := s1[`vcodecd_analysis_seconds_bucket{le="+Inf"}`]; got != wantFrames {
		t.Errorf("analysis histogram saw %v frames, want %v", got, wantFrames)
	}

	// Trace endpoint: every session's trailer ID resolves to a timeline
	// whose frame count matches the trailer.
	for i, id := range traces {
		if id == "" {
			t.Errorf("session %d: empty trace trailer", i)
			continue
		}
		resp, err := http.Get(ts.URL + "/debug/vcodec/trace?id=" + id)
		if err != nil {
			t.Fatal(err)
		}
		var rec obs.Record
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			t.Fatalf("trace %s: %v", id, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("trace %s: status %d", id, resp.StatusCode)
			continue
		}
		if rec.Frames != trailerFrames[i] {
			t.Errorf("trace %s: %d frames, trailer said %d", id, rec.Frames, trailerFrames[i])
		}
		if len(rec.Events) != rec.Frames {
			t.Errorf("trace %s: %d events for %d frames", id, len(rec.Events), rec.Frames)
		}
		if !rec.Done {
			t.Errorf("trace %s: not marked done", id)
		}
		for _, ev := range rec.Events {
			if ev.Bits <= 0 || ev.AnalysisMs <= 0 {
				t.Errorf("trace %s frame %d: bits=%d analysis=%v", id, ev.Index, ev.Bits, ev.AnalysisMs)
			}
		}
	}

	// Unknown trace → 404.
	resp, err := http.Get(ts.URL + "/debug/vcodec/trace?id=deadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", resp.StatusCode)
	}

	// Sessions listing: all 8 completed sessions retained, none live.
	resp, err = http.Get(ts.URL + "/debug/vcodec/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Live      []obs.Summary `json:"live"`
		Completed []obs.Summary `json:"completed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Live) != 0 || len(listing.Completed) != sessions {
		t.Errorf("sessions listing: %d live, %d completed; want 0/%d",
			len(listing.Live), len(listing.Completed), sessions)
	}

	// QoS audit endpoint responds with valid JSON.
	resp, err = http.Get(ts.URL + "/debug/vcodec/qos")
	if err != nil {
		t.Fatal(err)
	}
	var audit struct {
		Enabled bool            `json:"enabled"`
		Ticks   []QosAuditEntry `json:"ticks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&audit); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !audit.Enabled {
		t.Error("qos audit reports disabled on a QoS-enabled server")
	}
}

// TestTraceOfPinnedSession pins metadata propagation: a pinned batch
// session's flight record carries its priority, searcher and pinned
// level.
func TestTraceOfPinnedSession(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.SQCIF, 3, 1)
	_, ts := newTestServer(t, Config{})

	resp, err := http.Post(ts.URL+"/encode?qp=16&me=pbm&priority=batch&qoslevel=2", "video/x-yuv4mpeg",
		bytes.NewReader(y4mBody(t, frames)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	readPackets(t, resp.Body)
	id := resp.Trailer.Get(TrailerTrace)

	tr, err := http.Get(ts.URL + "/debug/vcodec/trace?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	var rec obs.Record
	if err := json.NewDecoder(tr.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Priority != "batch" || rec.Searcher != "pbm" || rec.PinnedLevel != 2 {
		t.Errorf("trace meta %q/%q/%d, want batch/pbm/2", rec.Priority, rec.Searcher, rec.PinnedLevel)
	}
	for _, ev := range rec.Events {
		if ev.QosLevel != 2 {
			t.Errorf("frame %d at level %d, want pinned 2", ev.Index, ev.QosLevel)
		}
	}
}
