// Closed-loop QoS: under overload vcodecd trades quality for latency
// instead of queueing or shedding. A periodic control loop computes a
// load score from per-phase latency EWMAs and the scheduler's occupancy,
// steps sessions through explicit degradation levels (quantiser up,
// ACBM→PBM at a forced intra boundary, complexity budget down) and
// restores them symmetrically with hysteresis when load drops. Every
// per-session actuation rides the codec's frame-lag contract
// (codec.Actuation): it is applied at frame hand-off on the session
// goroutine, so degraded streams stay deterministic and race-clean under
// Workers × Pipeline × Pool. Batch sessions degrade one step before live
// sessions (the controller's step leads the live level by one).
package server

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/search"
)

// QoS trailers: the session's final degradation level and how many level
// transitions the controller actuated on it mid-stream. A session with
// zero transitions encoded its whole stream at the reported level, so
// its bytes match the offline encoder with ApplyQosLevel applied.
const (
	TrailerQosLevel       = "X-Vcodec-Qos-Level"
	TrailerQosTransitions = "X-Vcodec-Qos-Transitions"
)

// QosLevelSpec is one degradation step. Levels are absolute, not
// cumulative: a session actuated to level L encodes exactly as if it had
// been admitted with ApplyQosLevel(cfg, L).
type QosLevelSpec struct {
	// QpOffset is added to the session's base quantiser.
	QpOffset int
	// CheapSearcher swaps expensive motion estimators (ACBM, FSBM,
	// RCFSBM) to PBM — the ~6× analysis-cost lever. Already-cheap
	// estimators are left alone.
	CheapSearcher bool
	// BudgetScale multiplies a budget-controlled session's
	// (core.Budgeted) complexity target instead of the searcher swap:
	// the budget is that session's explicit complexity knob.
	BudgetScale float64
	// cost is the level's relative analysis cost, used to project
	// whether a restoration would immediately re-breach the high water
	// mark (anti-oscillation).
	cost float64
}

// qosLevels is the degradation ladder. Level 0 is the session's
// requested quality.
var qosLevels = []QosLevelSpec{
	{QpOffset: 0, CheapSearcher: false, BudgetScale: 1, cost: 1},
	{QpOffset: 2, CheapSearcher: false, BudgetScale: 1, cost: 0.9},
	{QpOffset: 4, CheapSearcher: true, BudgetScale: 0.5, cost: 0.25},
	{QpOffset: 6, CheapSearcher: true, BudgetScale: 0.25, cost: 0.2},
}

// MaxQosLevel is the deepest degradation level (levels are 0..MaxQosLevel).
var MaxQosLevel = len(qosLevels) - 1

// qosMaxStep: the controller's global step runs one past the level count
// because batch leads live by one step (batch-first degradation).
var qosMaxStep = MaxQosLevel + 1

// Controller tuning. Degradation is immediate (one breached tick; two
// steps at once far past saturation) and restoration is slow (sustained
// low score, a dwell after any change, and a cost projection that must
// clear the high water mark) — degrade fast, restore carefully.
const (
	qosHighWater    = 1.0 // score above: degrade
	qosLowWater     = 0.5 // score below: restoration pressure
	qosRestoreTicks = 4   // consecutive low ticks per restore step
	qosDwellTicks   = 6   // min ticks between any two step changes
	qosEwmaAlpha    = 0.2 // per-frame latency EWMA weight
)

// levelForStep maps the controller's global step to a class's level:
// batch takes the full step, live lags one behind (batch degrades first,
// restores last).
func levelForStep(step int, batch bool) int {
	l := step
	if !batch {
		l = step - 1
	}
	if l < 0 {
		l = 0
	}
	if l > MaxQosLevel {
		l = MaxQosLevel
	}
	return l
}

// expensiveSearcher reports whether s is one of the estimators the
// CheapSearcher degradation replaces with PBM.
func expensiveSearcher(s search.Searcher) bool {
	switch s.(type) {
	case *core.ACBM, *search.FSBM, *search.RCFSBM:
		return true
	}
	return false
}

// ApplyQosLevel degrades cfg to the given level: the quantiser offset is
// added (the codec clamps), a budget-controlled searcher's target is
// rescaled, and otherwise an expensive searcher is swapped to PBM. It is
// the offline-verifiable meaning of a level: a session pinned (or
// actuated, with zero further transitions) at level L streams bytes
// identical to EncodePackets with ApplyQosLevel(cfg, L). Out-of-range
// levels are clamped.
func ApplyQosLevel(cfg codec.Config, level int) codec.Config {
	if level < 0 {
		level = 0
	}
	if level > MaxQosLevel {
		level = MaxQosLevel
	}
	spec := qosLevels[level]
	cfg.Qp += spec.QpOffset
	if b, ok := cfg.Searcher.(*core.Budgeted); ok {
		b.ScaleBudget(spec.BudgetScale)
	} else if spec.CheapSearcher && expensiveSearcher(cfg.Searcher) {
		cfg.Searcher = &search.PBM{}
	}
	return cfg
}

// qosSession is one adaptive session's coupling to the controller: the
// controller writes the target level, the session goroutine applies it
// at the next frame hand-off and records what is in force.
type qosSession struct {
	batch       bool
	target      atomic.Int32 // controller-written desired level
	applied     atomic.Int32 // session-written level actually encoding
	transitions atomic.Int32 // mid-stream level changes applied
}

// qosController runs the closed loop: sessions feed per-frame phase
// latencies in, the tick computes the load score and steps the global
// degradation level, and registered sessions pick their class's level up
// at the next frame hand-off.
type qosController struct {
	interval    time.Duration
	targetMs    float64
	maxSessions int
	sched       *scheduler

	stop chan struct{}
	done chan struct{}

	mu       sync.Mutex
	sessions map[*qosSession]struct{}
	// Per-phase latency EWMAs (ms): analysis is the EncodeFrame wall
	// clock (pool queueing included — the overload signal), emit is the
	// packet write + flush (entropy-side and client-side pressure).
	analysisMs float64
	emitMs     float64
	frameSeen  bool // any observation since the last tick (idle decay)

	step        int // global degradation step, 0..qosMaxStep
	downRun     int
	sinceChange int

	degrades   atomic.Int64 // controller step-up events
	restores   atomic.Int64 // controller step-down events
	actuations atomic.Int64 // per-session level changes applied at hand-off

	// audit is a bounded ring of per-tick decision records for
	// /debug/vcodec/qos: every tick appends the inputs the controller saw
	// (EWMAs, occupancy), the score it computed, and what it decided.
	// Written under c.mu in tick; auditNext points at the oldest entry.
	audit     []QosAuditEntry
	auditNext int
}

// qosAuditEntries is the audit ring capacity (~32s of history at the
// default 250ms tick).
const qosAuditEntries = 128

// QosAuditEntry is one control-loop tick as /debug/vcodec/qos reports
// it: every input to the decision, the decision, and the resulting
// per-class levels — enough to reconstruct why the fleet degraded (or
// refused to restore) at any point in the retained window.
type QosAuditEntry struct {
	Time       string  `json:"time"`
	AnalysisMs float64 `json:"analysis_ms"` // EWMA at decision time
	EmitMs     float64 `json:"emit_ms"`     // EWMA at decision time
	Active     int     `json:"active"`
	Queued     int     `json:"queued"`
	Score      float64 `json:"score"`
	Step       int     `json:"step"` // global step after the decision
	LiveLevel  int     `json:"live_level"`
	BatchLevel int     `json:"batch_level"`
	// Action is "degrade", "restore", or "" when the step held.
	Action string `json:"action,omitempty"`
}

func newQosController(interval time.Duration, targetMs float64, maxSessions int, sched *scheduler) *qosController {
	c := &qosController{
		interval:    interval,
		targetMs:    targetMs,
		maxSessions: maxSessions,
		sched:       sched,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		sessions:    make(map[*qosSession]struct{}),
	}
	go c.run()
	return c
}

func (c *qosController) run() {
	defer close(c.done)
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.tick()
		}
	}
}

func (c *qosController) close() {
	close(c.stop)
	<-c.done
}

// register couples a session to the loop; it starts at the class's
// current level (a session admitted under overload starts degraded).
func (c *qosController) register(batch bool) *qosSession {
	qs := &qosSession{batch: batch}
	c.mu.Lock()
	level := levelForStep(c.step, batch)
	c.sessions[qs] = struct{}{}
	c.mu.Unlock()
	qs.target.Store(int32(level))
	return qs
}

func (c *qosController) unregister(qs *qosSession) {
	c.mu.Lock()
	delete(c.sessions, qs)
	c.mu.Unlock()
}

// observe feeds one frame's phase latencies into the EWMAs. Called from
// session goroutines (analysis) and writer goroutines (emit).
func (c *qosController) observe(analysis, emit time.Duration) {
	c.mu.Lock()
	if analysis > 0 {
		c.analysisMs += qosEwmaAlpha * (float64(analysis.Nanoseconds())/1e6 - c.analysisMs)
		c.frameSeen = true
	}
	if emit > 0 {
		c.emitMs += qosEwmaAlpha * (float64(emit.Nanoseconds())/1e6 - c.emitMs)
	}
	c.mu.Unlock()
}

// tick computes the load score and applies one control decision.
func (c *qosController) tick() {
	active, queued := c.sched.counts()
	c.mu.Lock()
	if !c.frameSeen {
		// No frame landed since the last tick: the latency estimate is
		// stale evidence, decay it toward idle.
		c.analysisMs *= 0.5
		c.emitMs *= 0.5
	}
	c.frameSeen = false
	score := c.analysisMs/c.targetMs + 0.25*c.emitMs/c.targetMs +
		float64(queued)/float64(c.maxSessions) +
		0.25*float64(active)/float64(c.maxSessions)
	prevStep := c.step
	step := c.stepOn(score)
	for qs := range c.sessions {
		qs.target.Store(int32(levelForStep(step, qs.batch)))
	}
	action := ""
	if step > prevStep {
		action = "degrade"
	} else if step < prevStep {
		action = "restore"
	}
	c.auditAppend(QosAuditEntry{
		Time:       time.Now().UTC().Format(time.RFC3339Nano),
		AnalysisMs: c.analysisMs,
		EmitMs:     c.emitMs,
		Active:     active,
		Queued:     queued,
		Score:      score,
		Step:       step,
		LiveLevel:  levelForStep(step, false),
		BatchLevel: levelForStep(step, true),
		Action:     action,
	})
	c.mu.Unlock()
}

// auditAppend records one tick's decision in the audit ring. c.mu held.
func (c *qosController) auditAppend(e QosAuditEntry) {
	if len(c.audit) < qosAuditEntries {
		c.audit = append(c.audit, e)
		return
	}
	c.audit[c.auditNext] = e
	c.auditNext = (c.auditNext + 1) % len(c.audit)
}

// auditSnapshot returns the retained decision history, oldest first.
func (c *qosController) auditSnapshot() []QosAuditEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]QosAuditEntry, 0, len(c.audit))
	for i := 0; i < len(c.audit); i++ {
		out = append(out, c.audit[(c.auditNext+i)%len(c.audit)])
	}
	return out
}

// stepOn advances the hysteresis state machine by one tick with the
// given load score and returns the new global step. Degradation is
// immediate — one tick above the high water mark steps up, two steps
// when the score is twice the mark — while restoration needs
// qosRestoreTicks consecutive ticks below the low water mark, a dwell of
// qosDwellTicks since the last change, and a cost projection showing the
// restored step would not immediately re-breach the high water mark.
// The asymmetry is the no-oscillation argument: under sustained load the
// projection holds the degraded level steady instead of flapping around
// the expensive/cheap searcher boundary. Callers other than the control
// loop (the deterministic unit test) drive it with synthetic scores;
// c.mu must be held.
func (c *qosController) stepOn(score float64) int {
	c.sinceChange++
	switch {
	case score > qosHighWater:
		c.downRun = 0
		if c.step < qosMaxStep {
			c.step++
			if score > 2*qosHighWater && c.step < qosMaxStep {
				c.step++
			}
			c.sinceChange = 0
			c.degrades.Add(1)
		}
	case score < qosLowWater:
		c.downRun++
		if c.step > 0 && c.downRun >= qosRestoreTicks && c.sinceChange >= qosDwellTicks {
			ratio := qosLevels[levelForStep(c.step-1, true)].cost /
				qosLevels[levelForStep(c.step, true)].cost
			if score*ratio < 0.9*qosHighWater {
				c.step--
				c.downRun = 0
				c.sinceChange = 0
				c.restores.Add(1)
			}
		}
	default:
		c.downRun = 0
	}
	return c.step
}

// currentStep reports the global degradation step (0..qosMaxStep).
func (c *qosController) currentStep() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.step
}

// snapshot reports the controller state for /healthz and /metrics: the
// in-force level per class and the count of registered sessions at each
// applied level, per class.
func (c *qosController) snapshot() (liveLevel, batchLevel int, perLevel [2][]int) {
	perLevel[0] = make([]int, MaxQosLevel+1)
	perLevel[1] = make([]int, MaxQosLevel+1)
	c.mu.Lock()
	liveLevel = levelForStep(c.step, false)
	batchLevel = levelForStep(c.step, true)
	for qs := range c.sessions {
		cls := 0
		if qs.batch {
			cls = 1
		}
		perLevel[cls][qs.applied.Load()]++
	}
	c.mu.Unlock()
	return liveLevel, batchLevel, perLevel
}

// qosActuationFor builds the codec actuation realising a level for a
// session: the absolute quantiser offset, the searcher tier (the
// original estimator or the shared-per-session cheap PBM; a
// budget-controlled session keeps its searcher and rescales the budget
// instead) — always stated in full, so actuations are idempotent and
// restoration is symmetric.
func qosActuationFor(level int, orig search.Searcher, cheap *search.PBM) codec.Actuation {
	spec := qosLevels[level]
	a := codec.Actuation{QpOffset: spec.QpOffset, Searcher: orig}
	if _, ok := orig.(*core.Budgeted); ok {
		a.BudgetScale = spec.BudgetScale
	} else if spec.CheapSearcher && expensiveSearcher(orig) {
		a.Searcher = cheap
	}
	return a
}

// retryAfterSeconds scales the admission 503's Retry-After with how
// overloaded the server actually is: the queue backlog in units of the
// session cap, plus the current degradation step, floored at 1s and
// capped at 8s.
func retryAfterSeconds(queued, step, maxSessions int) int {
	s := 1 + step + queued/max(1, maxSessions)
	if s > 8 {
		s = 8
	}
	return s
}
