package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/video"
)

// TestQosControllerStepTrajectory drives the hysteresis state machine
// with a synthetic load-score trajectory and pins every transition:
// degradation is immediate (two steps past 2× the high water mark),
// restoration needs sustained low scores plus the dwell, the projection
// guard refuses restorations that would re-breach, and a middle-band
// tick resets the restore run. Deterministic: no ticker, no clock.
func TestQosControllerStepTrajectory(t *testing.T) {
	c := &qosController{}
	traj := []struct {
		score float64
		want  int
		note  string
	}{
		{0.7, 0, "middle band: no change"},
		{0.7, 0, "middle band: no change"},
		{1.5, 1, "breach: one step up"},
		{2.5, 3, "deep breach (>2x): two steps up"},
		{1.2, 4, "still breached: step to max"},
		{1.2, 4, "saturated: holds at max step"},
		{1.2, 4, "saturated: holds at max step"},
		{0.4, 4, "low, run 1 (dwell 3)"},
		{0.4, 4, "low, run 2"},
		{0.4, 4, "low, run 3"},
		{0.4, 3, "run 4, dwell 6: restore; same cost tier projects clear"},
		{0.4, 3, "run restarts after the change"},
		{0.4, 3, "run 2"},
		{0.7, 3, "middle band resets the restore run"},
		{0.4, 3, "run 1 again"},
		{0.4, 3, "run 2"},
		{0.4, 3, "run 3"},
		{0.4, 2, "run 4, dwell 7: restore (0.4*1.25 < 0.9)"},
		{0.45, 2, "run 1 (dwell 1)"},
		{0.45, 2, "run 2"},
		{0.45, 2, "run 3"},
		{0.45, 2, "run 4, dwell 4: dwell not served"},
		{0.45, 2, "dwell 5"},
		{0.45, 2, "dwell 6 served — but projection blocks: 0.45*3.6 re-breaches"},
		{0.45, 2, "holds: no oscillation at the searcher-cost cliff"},
		{0.45, 2, "holds"},
		{0.1, 1, "truly idle: projection clears (0.1*3.6), restore"},
		{0.1, 1, "run 1"},
		{0.1, 1, "run 2"},
		{0.1, 1, "run 3"},
		{0.1, 1, "run 4, dwell 4"},
		{0.1, 1, "dwell 5"},
		{0.1, 0, "dwell 6: restored to full quality"},
		{0.1, 0, "stays restored"},
	}
	for i, tc := range traj {
		if got := c.stepOn(tc.score); got != tc.want {
			t.Fatalf("tick %d (score %.2f, %s): step %d, want %d", i, tc.score, tc.note, got, tc.want)
		}
	}
	if d := c.degrades.Load(); d != 3 {
		t.Errorf("degrades %d, want 3", d)
	}
	if r := c.restores.Load(); r != 4 {
		t.Errorf("restores %d, want 4", r)
	}
}

// TestQosLevelForStep pins the batch-first mapping: batch takes the full
// step, live lags one behind, both clamped to the ladder.
func TestQosLevelForStep(t *testing.T) {
	wantBatch := []int{0, 1, 2, 3, 3}
	wantLive := []int{0, 0, 1, 2, 3}
	for step := 0; step <= qosMaxStep; step++ {
		if got := levelForStep(step, true); got != wantBatch[step] {
			t.Errorf("step %d batch level %d, want %d", step, got, wantBatch[step])
		}
		if got := levelForStep(step, false); got != wantLive[step] {
			t.Errorf("step %d live level %d, want %d", step, got, wantLive[step])
		}
	}
}

// TestQosRegisterStartsAtCurrentLevel: a session admitted under overload
// starts at its class's in-force level instead of briefly encoding at
// full quality.
func TestQosRegisterStartsAtCurrentLevel(t *testing.T) {
	c := newQosController(time.Hour, 75, 8, newScheduler(8, 8))
	defer c.close()
	c.mu.Lock()
	c.step = 3
	c.mu.Unlock()
	if got := c.register(true).target.Load(); got != 3 {
		t.Errorf("batch session admitted at level %d, want 3", got)
	}
	if got := c.register(false).target.Load(); got != 2 {
		t.Errorf("live session admitted at level %d, want 2", got)
	}
}

// TestRetryAfterSeconds pins the dynamic 503 backoff: floor 1s, plus the
// degradation step, plus the queue backlog in session-cap units, cap 8s.
func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct{ queued, step, maxSessions, want int }{
		{0, 0, 8, 1},
		{16, 0, 8, 3},
		{4, 2, 8, 3},
		{100, 4, 8, 8},
		{0, 0, 0, 1}, // max-sessions guard
	} {
		if got := retryAfterSeconds(tc.queued, tc.step, tc.maxSessions); got != tc.want {
			t.Errorf("retryAfterSeconds(%d,%d,%d) = %d, want %d",
				tc.queued, tc.step, tc.maxSessions, got, tc.want)
		}
	}
}

// TestQosPinnedLevelsByteIdenticalOffline is the offline-verifiability
// gate: a session pinned at QoS level L streams packets byte-identical
// to the offline encoder with ApplyQosLevel(cfg, L) — for every level,
// for both priority classes, and for the budget-controlled profile whose
// degradation is a budget rescale instead of a searcher swap.
func TestQosPinnedLevelsByteIdenticalOffline(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.SQCIF, 6, 7)
	body := y4mBody(t, frames)
	_, ts := newTestServer(t, Config{})

	run := func(query string, offline codec.Config, level int) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/encode?"+query, "video/x-yuv4mpeg", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			t.Fatalf("%s: status %d: %s", query, resp.StatusCode, msg)
		}
		pkts := readPackets(t, resp.Body)
		if errT := resp.Trailer.Get(TrailerError); errT != "" {
			t.Fatalf("%s: error trailer: %s", query, errT)
		}
		if got := resp.Trailer.Get(TrailerQosLevel); got != strconv.Itoa(level) {
			t.Errorf("%s: qos level trailer %q, want %d", query, got, level)
		}
		if got := resp.Trailer.Get(TrailerQosTransitions); got != "0" {
			t.Errorf("%s: transitions trailer %q, want 0 (pinned)", query, got)
		}
		want, _, err := codec.EncodePackets(ApplyQosLevel(offline, level), frames)
		if err != nil {
			t.Fatal(err)
		}
		if len(pkts) != len(want) {
			t.Fatalf("%s: %d packets, offline %d", query, len(pkts), len(want))
		}
		for i := range want {
			if !bytes.Equal(pkts[i], want[i]) {
				t.Errorf("%s: packet %d differs from offline ApplyQosLevel encode", query, i)
				break
			}
		}
	}

	for level := 0; level <= MaxQosLevel; level++ {
		pri := "live"
		if level%2 == 1 {
			pri = "batch" // priority is pure scheduling; bytes must not care
		}
		run(fmt.Sprintf("qp=14&me=acbm&priority=%s&qoslevel=%d", pri, level),
			codec.Config{Qp: 14, FPS: 30, Searcher: core.New(core.DefaultParams), Workers: 1}, level)
	}

	// Budget-controlled profile: level 2 rescales the complexity target
	// (ScaleBudget 0.5) instead of swapping the searcher.
	bd, err := core.NewBudgeted(150, core.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	run("qp=14&budget=150&qoslevel=2",
		codec.Config{Qp: 14, FPS: 30, Searcher: bd, Workers: 1}, 2)
}

// TestQosDegradeUnderLoadAndRestore runs the loop for real: a controller
// tuned so any observed frame latency counts as overload must degrade a
// running session mid-stream (trailer level > 0, transitions > 0) while
// the stream stays decodable and complete — graceful degradation, not
// truncation — and once the session ends the controller must walk back
// to full quality.
func TestQosDegradeUnderLoadAndRestore(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.SQCIF, 24, 7)
	s, ts := newTestServer(t, Config{
		MaxSessions:      2,
		QosInterval:      2 * time.Millisecond,
		QosTargetFrameMs: 0.01, // any real frame latency reads as overload
	})

	resp, err := http.Post(ts.URL+"/encode?qp=16&me=acbm", "video/x-yuv4mpeg",
		bytes.NewReader(y4mBody(t, frames)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	pkts := readPackets(t, resp.Body)
	if errT := resp.Trailer.Get(TrailerError); errT != "" {
		t.Fatalf("error trailer: %s", errT)
	}
	if got := resp.Trailer.Get(TrailerFrames); got != strconv.Itoa(len(frames)) {
		t.Fatalf("frames trailer %q, want %d — degradation must not truncate", got, len(frames))
	}
	level, err := strconv.Atoi(resp.Trailer.Get(TrailerQosLevel))
	if err != nil || level <= 0 {
		t.Errorf("qos level trailer %q, want > 0 under forced overload", resp.Trailer.Get(TrailerQosLevel))
	}
	if tr, _ := strconv.Atoi(resp.Trailer.Get(TrailerQosTransitions)); tr <= 0 {
		t.Errorf("transitions trailer %q, want > 0 (degraded mid-stream)", resp.Trailer.Get(TrailerQosTransitions))
	}

	// The degraded stream decodes end to end: quality was traded, not
	// correctness.
	dec, err := codec.NewPacketDecoder(pkts[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, pkt := range pkts[1:] {
		if _, err := dec.DecodePacket(pkt); err != nil {
			t.Fatalf("decoding degraded frame %d: %v", i, err)
		}
	}

	// Load is gone: the idle decay must walk the controller back to step
	// 0 (4 low ticks + 6-tick dwell per step at a 2ms interval).
	deadline := time.Now().Add(10 * time.Second)
	for s.qos.currentStep() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("controller stuck at step %d after load removed", s.qos.currentStep())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.qos.restores.Load() == 0 {
		t.Error("no restore steps counted")
	}

	// Observability: the degradation shows up on /healthz and /metrics.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hzBody, _ := io.ReadAll(hz.Body)
	hz.Body.Close()
	if !strings.Contains(string(hzBody), `"qos_level":0`) {
		t.Errorf("healthz missing restored qos_level: %s", hzBody)
	}
	mt, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mtBody, _ := io.ReadAll(mt.Body)
	mt.Body.Close()
	for _, want := range []string{
		"vcodecd_qos_level 0",
		"vcodecd_qos_degrades_total",
		"vcodecd_qos_restores_total",
		"vcodecd_qos_actuations_total",
		"vcodecd_sessions_active_live",
	} {
		if !strings.Contains(string(mtBody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
