// Package server implements vcodecd's encode-as-a-service layer: an HTTP
// handler set that accepts raw Y4M video uploads, encodes them with the
// repository's codec and streams the packetized bitstream back as frames
// complete, plus the multi-session scheduler that makes N concurrent
// uploads share one machine-sized analysis worker pool.
//
// # Session lifecycle
//
// A POST /encode request is one session. It passes admission control
// (concurrency cap + bounded wait queue), then loops: read one frame from
// the request body, analyse it on the shared codec.Pool, and emit its
// packet into the chunked response, flushing per packet — the client sees
// the first frame's bits at one-frame latency, not one-sequence. The
// session ends when the upload ends (clean EOF), the client disconnects,
// or the frame cap is hit; per-session statistics travel as HTTP trailers.
//
// # Scheduler fairness invariants
//
// All admitted sessions share one codec.Pool sized to the machine, not
// Config.Workers goroutines per session. Sessions interleave on the pool
// at macroblock granularity (a session submits at most one wavefront
// diagonal of tasks before it must wait on the barrier), so an admitted
// session makes analysis progress within one macroblock's latency of any
// other of its class — fair-share by FIFO queue position within a
// priority tier. Sessions carry ?priority=live|batch: live tasks
// dispatch first (preempting batch at the anti-diagonal boundary), and
// batch keeps a guaranteed anti-starvation share of dispatches (see
// codec.Pool). The closed-loop QoS controller (qos.go) degrades batch
// one level ahead of live under overload, same ordering, same rationale.
//
// # What may block where
//
// A slow-reading client blocks its own session only: the packet write
// blocks in the kernel socket buffer, which blocks the session's emit
// callback, which (one frame in flight) blocks its next EncodeFrame —
// backpressure, not buffering. Pool workers never block on a session's
// client: they only run per-macroblock analysis tasks and the bounded
// borrow of a forked searcher documented deadlock-free in codec.Pool.
// Admission waits (queue) block only the waiting request's goroutine and
// are bounded by MaxQueued; beyond that /encode fails fast with 503.
package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

var (
	errDraining  = errors.New("server: draining, not admitting sessions")
	errQueueFull = errors.New("server: session queue full")
)

// scheduler is the admission controller: at most maxSessions sessions
// encode concurrently, at most maxQueued more wait for a slot, everyone
// else is rejected immediately.
type scheduler struct {
	slots     chan struct{}
	maxQueued int
	queued    atomic.Int64

	drainCh chan struct{} // closed by beginDrain

	mu       sync.Mutex
	draining bool
	active   int
	// Per-class occupancy (live/batch priority tiers), for the QoS
	// controller's batch-first decisions and the /metrics gauges.
	activeLive  int
	activeBatch int
}

func newScheduler(maxSessions, maxQueued int) *scheduler {
	return &scheduler{
		slots:     make(chan struct{}, maxSessions),
		maxQueued: maxQueued,
		drainCh:   make(chan struct{}),
	}
}

// admit blocks until the session may start encoding. It returns
// errQueueFull when too many sessions are already waiting, errDraining
// once shutdown has begun, or ctx.Err() when the client gave up while
// queued. On nil return the caller must call release with the same
// class.
func (s *scheduler) admit(ctx context.Context, batch bool) error {
	select {
	case <-s.drainCh:
		return errDraining
	default:
	}
	select {
	case s.slots <- struct{}{}:
	default:
		// No free slot: join the bounded wait queue.
		if int(s.queued.Add(1)) > s.maxQueued {
			s.queued.Add(-1)
			return errQueueFull
		}
		defer s.queued.Add(-1)
		select {
		case s.slots <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		case <-s.drainCh:
			return errDraining
		}
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.slots
		return errDraining
	}
	s.active++
	if batch {
		s.activeBatch++
	} else {
		s.activeLive++
	}
	s.mu.Unlock()
	return nil
}

// release returns the session's slot.
func (s *scheduler) release(batch bool) {
	s.mu.Lock()
	s.active--
	if batch {
		s.activeBatch--
	} else {
		s.activeLive--
	}
	s.mu.Unlock()
	<-s.slots
}

// counts reports (active, queued) for health and metrics.
func (s *scheduler) counts() (active, queued int) {
	s.mu.Lock()
	active = s.active
	s.mu.Unlock()
	return active, int(s.queued.Load())
}

// countsByClass reports the active sessions per priority tier.
func (s *scheduler) countsByClass() (live, batch int) {
	s.mu.Lock()
	live, batch = s.activeLive, s.activeBatch
	s.mu.Unlock()
	return live, batch
}

// beginDrain stops admitting new sessions (idempotent): queued sessions
// fail with errDraining, in-flight sessions run to completion.
func (s *scheduler) beginDrain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	s.mu.Unlock()
}

// isDraining reports whether beginDrain has been called.
func (s *scheduler) isDraining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// waitIdle blocks until every in-flight session has released its slot, or
// ctx expires.
func (s *scheduler) waitIdle(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if active, _ := s.counts(); active == 0 {
			return nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
