package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/search"
)

// ContentType is the media type of the framed packet stream /encode
// returns (codec.PacketWriter records).
const ContentType = "application/x-vcodec-packets"

// Trailer names carrying per-session results at the end of the packet
// stream.
const (
	TrailerFrames = "X-Vcodec-Frames"
	TrailerPSNRY  = "X-Vcodec-Psnr-Y"
	TrailerKbps   = "X-Vcodec-Kbps"
	// TrailerTargetKbps echoes the session's kbps target (rate-controlled
	// sessions only), so a client can read achieved-vs-target from the
	// trailers alone.
	TrailerTargetKbps = "X-Vcodec-Target-Kbps"
	TrailerError      = "X-Vcodec-Error"
)

// Config sizes the serving layer.
type Config struct {
	// PoolWorkers is the shared analysis pool size (0 = GOMAXPROCS).
	// This is the machine-wide analysis parallelism: sessions share it
	// fairly instead of each spinning up its own worker set.
	PoolWorkers int
	// MaxSessions caps concurrently encoding sessions (default 8).
	MaxSessions int
	// MaxQueued caps sessions waiting for admission (default 32); beyond
	// it /encode fails fast with 503.
	MaxQueued int
	// MaxFramesPerSession bounds one upload (0 = unlimited).
	MaxFramesPerSession int
	// QosInterval is the closed-loop QoS controller's tick period
	// (default 250ms). Negative disables the controller entirely:
	// sessions then encode at their requested (or pinned) level no
	// matter the load.
	QosInterval time.Duration
	// QosTargetFrameMs is the per-frame analysis latency — EncodeFrame
	// wall clock, shared-pool queueing included — the controller steers
	// the EWMA to stay under (default 75, comfortably inside an
	// interactive frame interval).
	QosTargetFrameMs float64
}

func (c Config) withDefaults() Config {
	if c.PoolWorkers <= 0 {
		c.PoolWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 8
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 32
	}
	if c.QosInterval == 0 {
		c.QosInterval = 250 * time.Millisecond
	}
	if c.QosTargetFrameMs <= 0 {
		c.QosTargetFrameMs = 75
	}
	return c
}

// Server is the encode service: it owns the shared analysis pool and the
// session scheduler. Serve it with net/http via Handler.
type Server struct {
	cfg   Config
	pool  *codec.Pool
	sched *scheduler
	qos   *qosController // nil when Config.QosInterval < 0
	mux   *http.ServeMux
	m     metrics
	start time.Time
}

// New builds a server and starts its analysis pool and QoS control loop.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		pool:  codec.NewPool(cfg.PoolWorkers),
		sched: newScheduler(cfg.MaxSessions, cfg.MaxQueued),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	if cfg.QosInterval > 0 {
		s.qos = newQosController(cfg.QosInterval, cfg.QosTargetFrameMs, cfg.MaxSessions, s.sched)
	}
	s.mux.HandleFunc("/encode", s.handleEncode)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the HTTP handler tree (/encode, /healthz, /metrics).
func (s *Server) Handler() http.Handler { return s.mux }

// Drain begins graceful shutdown: new sessions are rejected with 503 and
// the call blocks until every in-flight session has finished (or ctx
// expires). Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.sched.beginDrain()
	return s.sched.waitIdle(ctx)
}

// Close stops the QoS control loop and releases the analysis pool. Only
// call it after Drain has returned nil (pool workers must be idle).
func (s *Server) Close() {
	if s.qos != nil {
		s.qos.close()
	}
	s.pool.Close()
}

// handleEncode runs one encode session: Y4M frames in (chunked), framed
// packets out, flushed per packet.
func (s *Server) handleEncode(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a YUV4MPEG2 stream", http.StatusMethodNotAllowed)
		return
	}
	cfg, opts, err := parseSessionConfig(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.sched.admit(r.Context(), opts.batch); err != nil {
		switch err {
		case errDraining, errQueueFull:
			s.m.sessionsRejected.Add(1)
			// Retry-After scales with the actual backlog and how degraded
			// the fleet already is — a rejected client under deep overload
			// backs off harder than one that just raced a full queue.
			_, queued := s.sched.counts()
			step := 0
			if s.qos != nil {
				step = s.qos.currentStep()
			}
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(queued, step, s.cfg.MaxSessions)))
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		default: // client gave up while queued
		}
		return
	}
	defer s.sched.release(opts.batch)
	s.m.sessionsTotal.Add(1)

	y4m, err := frame.NewY4MReader(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if sz := y4m.Size(); sz.W%16 != 0 || sz.H%16 != 0 {
		http.Error(w, fmt.Sprintf("frame size %dx%d not divisible into 16x16 macroblocks", sz.W, sz.H),
			http.StatusBadRequest)
		return
	}
	if fps := y4m.FPS(); fps > 0 {
		cfg.FPS = fps
	}
	// Sessions share the machine-sized pool (never private workers) and
	// pipeline entropy of frame n over analysis of frame n+1. Per-session
	// rate profiles (kbps, budget) ride the same path: the frame-lag
	// controllers decide before analysis and observe after entropy, so a
	// rate-controlled session keeps full pool parallelism and still
	// streams the bytes the offline encoder would produce.
	cfg.Pool = s.pool
	cfg.Pipeline = true
	if opts.batch {
		cfg.Priority = codec.PriorityBatch
	}

	// QoS coupling. A pinned session (qoslevel=N) takes its degradation
	// at admission and is exempt from the controller — its whole stream
	// encodes at one level, byte-verifiable against the offline encoder.
	// An adaptive session registers with the control loop and applies the
	// controller's target level at each frame hand-off below.
	var qs *qosSession
	qosLevel := 0
	if opts.pinned >= 0 {
		cfg = ApplyQosLevel(cfg, opts.pinned)
		qosLevel = opts.pinned
	} else if s.qos != nil {
		qs = s.qos.register(opts.batch)
		defer s.qos.unregister(qs)
	}
	origSearcher := cfg.Searcher
	cheapSearcher := &search.PBM{}

	// The response streams while the request body is still being read;
	// HTTP/1 needs full-duplex explicitly enabled (no-op error on HTTP/2).
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()

	w.Header().Set("Content-Type", ContentType)
	w.Header().Set("Trailer", strings.Join([]string{TrailerFrames, TrailerPSNRY, TrailerKbps, TrailerTargetKbps, TrailerQosLevel, TrailerQosTransitions, TrailerError}, ", "))

	// The request context dies the moment the client disconnects (or a
	// fronting gateway abandons the attempt). Every per-frame step checks
	// it, so a dead session releases its scheduler slot and pool share
	// within one frame instead of encoding the rest of a buffered upload
	// into a socket nobody reads — small packets can keep "succeeding"
	// into kernel buffers long after the peer is gone.
	ctx := r.Context()

	pw := codec.NewPacketWriter(w)
	es := codec.NewEncodeStream(cfg, func(p codec.Packet) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("client gone: %w", err)
		}
		emitStart := time.Now()
		if err := pw.WritePacket(p.Index, p.Data); err != nil {
			return err
		}
		// Flush per packet: this is what turns the response into a live
		// stream (first-byte latency of one frame) and what propagates a
		// slow client's backpressure into the encode loop.
		if err := rc.Flush(); err != nil {
			return err
		}
		if s.qos != nil {
			s.qos.observe(0, time.Since(emitStart))
		}
		s.m.packetsTotal.Add(1)
		s.m.bytesOut.Add(int64(len(p.Data)))
		if p.Index > 0 {
			s.m.framesTotal.Add(1)
		}
		return nil
	})

	begin := time.Now()
	frames := 0
	var sessionErr error
	for {
		if err := ctx.Err(); err != nil {
			sessionErr = fmt.Errorf("client gone: %w", err)
			break
		}
		f, err := y4m.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			sessionErr = err
			break
		}
		if s.cfg.MaxFramesPerSession > 0 && frames >= s.cfg.MaxFramesPerSession {
			sessionErr = fmt.Errorf("session frame cap (%d) exceeded", s.cfg.MaxFramesPerSession)
			break
		}
		// Frame hand-off is the only point a QoS level may change: the
		// actuation lands on the session goroutine before this frame's
		// analysis, so the stream stays deterministic for the actuation
		// schedule it actually received.
		if qs != nil {
			if t := int(qs.target.Load()); t != qosLevel {
				es.Actuate(qosActuationFor(t, origSearcher, cheapSearcher))
				qosLevel = t
				qs.applied.Store(int32(t))
				if frames > 0 {
					qs.transitions.Add(1)
				}
				s.qos.actuations.Add(1)
			}
		}
		encStart := time.Now()
		if err := es.EncodeFrame(f); err != nil {
			sessionErr = err
			break
		}
		if s.qos != nil {
			s.qos.observe(time.Since(encStart), 0)
		}
		frames++
	}
	stats, closeErr := es.Close()
	if sessionErr == nil {
		sessionErr = closeErr
	}
	analysis, entropy := es.PhaseTimes()
	s.m.analysisNs.Add(analysis.Nanoseconds())
	s.m.entropyNs.Add(entropy.Nanoseconds())
	s.m.sessionNs.Add(time.Since(begin).Nanoseconds())

	// Declared trailers: set after the body, shipped with the final chunk.
	w.Header().Set(TrailerFrames, strconv.Itoa(frames))
	w.Header().Set(TrailerPSNRY, strconv.FormatFloat(stats.AvgPSNRY(), 'f', 2, 64))
	w.Header().Set(TrailerKbps, strconv.FormatFloat(stats.BitrateKbps(), 'f', 1, 64))
	if cfg.TargetKbps > 0 {
		w.Header().Set(TrailerTargetKbps, strconv.FormatFloat(cfg.TargetKbps, 'f', 1, 64))
		// Only completed sessions enter the tracking sums: a truncated
		// stream's bitrate (an I-frame-heavy prefix, or zero frames) would
		// skew the achieved/target ratio the metrics promise.
		if sessionErr == nil {
			s.m.rateSessions.Add(1)
			s.m.rateTargetMilliKbps.Add(int64(cfg.TargetKbps * 1000))
			s.m.rateAchievedMilliKbps.Add(int64(stats.BitrateKbps() * 1000))
		}
	}
	w.Header().Set(TrailerQosLevel, strconv.Itoa(qosLevel))
	transitions := 0
	if qs != nil {
		transitions = int(qs.transitions.Load())
	}
	w.Header().Set(TrailerQosTransitions, strconv.Itoa(transitions))
	if sessionErr != nil {
		s.m.sessionsFailed.Add(1)
		w.Header().Set(TrailerError, sessionErr.Error())
	}
}

// sessionOpts carries the serving-layer (non-codec) session parameters.
type sessionOpts struct {
	// batch marks the session PriorityBatch on the shared pool (and
	// first in line for QoS degradation).
	batch bool
	// pinned, when ≥ 0, fixes the session's QoS level for its whole
	// lifetime, exempt from the controller. -1 = adaptive.
	pinned int
}

// parseSessionConfig maps /encode query parameters onto a codec.Config:
// qp, me (searcher), entropy, gop, range, ap, deblock, kbps (target
// bitrate; frame-lag rate control) and budget (target motion-search
// positions/MB; the ACBM complexity servo). Rate profiles run at full
// pool parallelism — nothing here degrades the session to serial. The
// serving-layer parameters ride alongside: priority (live|batch pool
// tier) and qoslevel (pin the session at one degradation level).
func parseSessionConfig(q url.Values) (codec.Config, sessionOpts, error) {
	cfg := codec.Config{Qp: 16}
	opts := sessionOpts{pinned: -1}
	switch strings.ToLower(q.Get("priority")) {
	case "", "live":
	case "batch":
		opts.batch = true
	default:
		return cfg, opts, fmt.Errorf("unknown priority %q (want live|batch)", q.Get("priority"))
	}
	if v := q.Get("qoslevel"); v != "" {
		n, e := strconv.Atoi(v)
		if e != nil || n < 0 || n > MaxQosLevel {
			return cfg, opts, fmt.Errorf("bad qoslevel=%q (want 0..%d)", v, MaxQosLevel)
		}
		opts.pinned = n
	}
	var err error
	intArg := func(name string, def int) int {
		v := q.Get(name)
		if v == "" {
			return def
		}
		n, e := strconv.Atoi(v)
		if e != nil && err == nil {
			err = fmt.Errorf("bad %s=%q", name, v)
		}
		return n
	}
	boolArg := func(name string) bool {
		v := q.Get(name)
		if v == "" {
			return false
		}
		b, e := strconv.ParseBool(v)
		if e != nil && err == nil {
			err = fmt.Errorf("bad %s=%q", name, v)
		}
		return b
	}
	cfg.Qp = intArg("qp", 16)
	cfg.SearchRange = intArg("range", 0)
	cfg.IntraPeriod = intArg("gop", 0)
	cfg.AdvancedPrediction = boolArg("ap")
	cfg.Deblock = boolArg("deblock")
	if v := q.Get("kbps"); v != "" {
		kbps, e := strconv.ParseFloat(v, 64)
		if e != nil || kbps < 0 {
			return cfg, opts, fmt.Errorf("bad kbps=%q", v)
		}
		cfg.TargetKbps = kbps
	}
	if err != nil {
		return cfg, opts, err
	}
	if cfg.Qp < 1 || cfg.Qp > 31 {
		return cfg, opts, fmt.Errorf("qp %d out of range 1..31", cfg.Qp)
	}
	if cfg.Searcher, err = core.SearcherByName(q.Get("me")); err != nil {
		return cfg, opts, err
	}
	if v := q.Get("budget"); v != "" {
		target, e := strconv.ParseFloat(v, 64)
		if e != nil || target <= 0 {
			return cfg, opts, fmt.Errorf("bad budget=%q (want positive positions/MB)", v)
		}
		if me := strings.ToLower(q.Get("me")); me != "" && me != "acbm" {
			return cfg, opts, fmt.Errorf("budget requires the ACBM searcher (got me=%q)", q.Get("me"))
		}
		if cfg.Searcher, e = core.NewBudgeted(target, core.DefaultParams); e != nil {
			return cfg, opts, e
		}
	}
	switch strings.ToLower(q.Get("entropy")) {
	case "", "expgolomb", "eg":
		cfg.Entropy = codec.EntropyExpGolomb
	case "arith", "arithmetic", "sac":
		cfg.Entropy = codec.EntropyArith
	default:
		return cfg, opts, fmt.Errorf("unknown entropy backend %q", q.Get("entropy"))
	}
	return cfg, opts, nil
}
