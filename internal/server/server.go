package server

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/obs"
	"repro/internal/search"
)

// ContentType is the media type of the framed packet stream /encode
// returns (codec.PacketWriter records).
const ContentType = "application/x-vcodec-packets"

// LadderContentType is the media type a simulcast session returns: the
// rungs' packet streams interleaved as codec.LadderPacketWriter records.
const LadderContentType = "application/x-vcodec-ladder-packets"

// Trailer names carrying per-session results at the end of the packet
// stream.
const (
	TrailerFrames = "X-Vcodec-Frames"
	TrailerPSNRY  = "X-Vcodec-Psnr-Y"
	TrailerKbps   = "X-Vcodec-Kbps"
	// TrailerTargetKbps echoes the session's kbps target (rate-controlled
	// sessions only), so a client can read achieved-vs-target from the
	// trailers alone.
	TrailerTargetKbps = "X-Vcodec-Target-Kbps"
	TrailerError      = "X-Vcodec-Error"
	// TrailerRungs summarises a ladder session per rung as
	// "WxH:frames:psnrY:kbps" entries joined by ";", in rung order.
	TrailerRungs = "X-Vcodec-Rungs"
	// TrailerTrace echoes the session's trace ID (minted here, or
	// accepted from an inbound X-Vcodec-Trace header — typically the
	// gateway's), the key into /debug/vcodec/trace.
	TrailerTrace = obs.TraceIDHeader
)

// Config sizes the serving layer.
type Config struct {
	// PoolWorkers is the shared analysis pool size (0 = GOMAXPROCS).
	// This is the machine-wide analysis parallelism: sessions share it
	// fairly instead of each spinning up its own worker set.
	PoolWorkers int
	// MaxSessions caps concurrently encoding sessions (default 8).
	MaxSessions int
	// MaxQueued caps sessions waiting for admission (default 32); beyond
	// it /encode fails fast with 503.
	MaxQueued int
	// MaxFramesPerSession bounds one upload (0 = unlimited).
	MaxFramesPerSession int
	// QosInterval is the closed-loop QoS controller's tick period
	// (default 250ms). Negative disables the controller entirely:
	// sessions then encode at their requested (or pinned) level no
	// matter the load.
	QosInterval time.Duration
	// QosTargetFrameMs is the per-frame analysis latency — EncodeFrame
	// wall clock, shared-pool queueing included — the controller steers
	// the EWMA to stay under (default 75, comfortably inside an
	// interactive frame interval).
	QosTargetFrameMs float64
}

func (c Config) withDefaults() Config {
	if c.PoolWorkers <= 0 {
		c.PoolWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 8
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 32
	}
	if c.QosInterval == 0 {
		c.QosInterval = 250 * time.Millisecond
	}
	if c.QosTargetFrameMs <= 0 {
		c.QosTargetFrameMs = 75
	}
	return c
}

// Server is the encode service: it owns the shared analysis pool and the
// session scheduler. Serve it with net/http via Handler.
type Server struct {
	cfg   Config
	pool  *codec.Pool
	sched *scheduler
	qos   *qosController // nil when Config.QosInterval < 0
	mux   *http.ServeMux
	m     metrics
	obs   *obs.Registry // per-session flight recorders (always on)
	hist  serverHists
	start time.Time
}

// serverHists are vcodecd's latency distributions, exposed on /metrics.
// Every observation is a phase boundary the serving path already times,
// so the histograms cost one atomic add each on top of existing code.
type serverHists struct {
	firstPacket *obs.Histogram // request start → first frame packet flushed
	frameGap    *obs.Histogram // gap between consecutive frame-packet flushes
	read        *obs.Histogram // Y4M source-frame read (client upload pressure)
	analysis    *obs.Histogram // per-frame phase-1 wall clock
	entropy     *obs.Histogram // per-frame phase-2 wall clock
	emit        *obs.Histogram // per-packet write + client flush
	queueWait   *obs.Histogram // per-frame summed shared-pool queue wait
}

func newServerHists() serverHists {
	return serverHists{
		firstPacket: obs.NewHistogram("vcodecd_first_packet_seconds", "request start to first frame packet flushed"),
		frameGap:    obs.NewHistogram("vcodecd_frame_gap_seconds", "gap between consecutive frame-packet flushes"),
		read:        obs.NewHistogram("vcodecd_read_seconds", "Y4M source-frame read latency"),
		analysis:    obs.NewHistogram("vcodecd_analysis_seconds", "per-frame macroblock-analysis wall clock"),
		entropy:     obs.NewHistogram("vcodecd_entropy_seconds", "per-frame entropy-coding wall clock"),
		emit:        obs.NewHistogram("vcodecd_emit_seconds", "per-packet write plus client flush"),
		queueWait:   obs.NewHistogram("vcodecd_queue_wait_seconds", "per-frame summed shared-pool queue wait"),
	}
}

// New builds a server and starts its analysis pool and QoS control loop.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		pool:  codec.NewPool(cfg.PoolWorkers),
		sched: newScheduler(cfg.MaxSessions, cfg.MaxQueued),
		mux:   http.NewServeMux(),
		obs:   obs.NewRegistry(0),
		hist:  newServerHists(),
		start: time.Now(),
	}
	if cfg.QosInterval > 0 {
		s.qos = newQosController(cfg.QosInterval, cfg.QosTargetFrameMs, cfg.MaxSessions, s.sched)
	}
	s.mux.HandleFunc("/encode", s.handleEncode)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/vcodec/sessions", s.handleDebugSessions)
	s.mux.HandleFunc("/debug/vcodec/trace", s.handleDebugTrace)
	s.mux.HandleFunc("/debug/vcodec/qos", s.handleDebugQos)
	return s
}

// Handler returns the HTTP handler tree (/encode, /healthz, /metrics).
func (s *Server) Handler() http.Handler { return s.mux }

// Drain begins graceful shutdown: new sessions are rejected with 503 and
// the call blocks until every in-flight session has finished (or ctx
// expires). Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.sched.beginDrain()
	return s.sched.waitIdle(ctx)
}

// Close stops the QoS control loop and releases the analysis pool. Only
// call it after Drain has returned nil (pool workers must be idle).
func (s *Server) Close() {
	if s.qos != nil {
		s.qos.close()
	}
	s.pool.Close()
}

// handleEncode runs one encode session: Y4M frames in (chunked), framed
// packets out, flushed per packet.
func (s *Server) handleEncode(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a YUV4MPEG2 stream", http.StatusMethodNotAllowed)
		return
	}
	cfg, opts, err := parseSessionConfig(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.sched.admit(r.Context(), opts.batch); err != nil {
		switch err {
		case errDraining, errQueueFull:
			s.m.sessionsRejected.Add(1)
			// Retry-After scales with the actual backlog and how degraded
			// the fleet already is — a rejected client under deep overload
			// backs off harder than one that just raced a full queue.
			_, queued := s.sched.counts()
			step := 0
			if s.qos != nil {
				step = s.qos.currentStep()
			}
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(queued, step, s.cfg.MaxSessions)))
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		default: // client gave up while queued
		}
		return
	}
	defer s.sched.release(opts.batch)
	s.m.sessionsTotal.Add(1)

	// Trace identity: accept a sanitized inbound ID (normally minted by
	// the fronting gateway) or mint one here. The ID keys the session's
	// flight recorder into /debug/vcodec/trace and is echoed in the
	// response trailers, so client, gateway and backend all name the
	// same session.
	traceID := obs.SanitizeTraceID(r.Header.Get(obs.TraceIDHeader))
	if traceID == "" {
		traceID = obs.NewTraceID()
	}
	pri := "live"
	if opts.batch {
		pri = "batch"
	}
	meName := strings.ToLower(r.URL.Query().Get("me"))
	if meName == "" {
		meName = "acbm"
	}
	rec := obs.NewFlightRecorder(traceID, obs.Meta{Priority: pri, Searcher: meName, PinnedLevel: opts.pinned, Rungs: len(opts.ladder)}, 0)
	s.obs.Add(rec)
	defer s.obs.Complete(rec)

	// pprof labels scope the session goroutine — and the pipeline writer
	// goroutine it spawns, which inherits the labels at creation — so a
	// CPU or goroutine profile taken under load attributes samples to
	// session, priority class and searcher.
	pprof.Do(r.Context(), pprof.Labels(
		"vcodec_session", traceID,
		"vcodec_priority", pri,
		"vcodec_searcher", meName,
	), func(ctx context.Context) {
		if len(opts.ladder) > 0 {
			s.encodeLadderSession(ctx, w, r, cfg, opts, rec, traceID)
		} else {
			s.encodeSession(ctx, w, r, cfg, opts, rec, traceID)
		}
	})
}

// encodeSession runs an admitted session: Y4M frames in, framed packets
// out, the flight recorder observing every phase boundary along the way.
func (s *Server) encodeSession(ctx context.Context, w http.ResponseWriter, r *http.Request, cfg codec.Config, opts sessionOpts, rec *obs.FlightRecorder, traceID string) {
	y4m, err := frame.NewY4MReader(r.Body)
	if err != nil {
		rec.Finish(err)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if sz := y4m.Size(); sz.W%16 != 0 || sz.H%16 != 0 {
		err := fmt.Errorf("frame size %dx%d not divisible into 16x16 macroblocks", sz.W, sz.H)
		rec.Finish(err)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if fps := y4m.FPS(); fps > 0 {
		cfg.FPS = fps
	}
	// Sessions share the machine-sized pool (never private workers) and
	// pipeline entropy of frame n over analysis of frame n+1. Per-session
	// rate profiles (kbps, budget) ride the same path: the frame-lag
	// controllers decide before analysis and observe after entropy, so a
	// rate-controlled session keeps full pool parallelism and still
	// streams the bytes the offline encoder would produce.
	cfg.Pool = s.pool
	cfg.Pipeline = true
	if opts.batch {
		cfg.Priority = codec.PriorityBatch
	}
	// The flight recorder rides the codec's observer hook: per-frame
	// analysis/entropy wall clocks, pool queue waits and encoded sizes
	// flow into the session's ring and the server-wide histograms.
	// Observation is one-way — nothing here can change an output bit.
	cfg.Observer = &sessionObserver{rec: rec, h: &s.hist}

	// QoS coupling. A pinned session (qoslevel=N) takes its degradation
	// at admission and is exempt from the controller — its whole stream
	// encodes at one level, byte-verifiable against the offline encoder.
	// An adaptive session registers with the control loop and applies the
	// controller's target level at each frame hand-off below.
	var qs *qosSession
	qosLevel := 0
	if opts.pinned >= 0 {
		cfg = ApplyQosLevel(cfg, opts.pinned)
		qosLevel = opts.pinned
		rec.SetQosLevel(qosLevel)
	} else if s.qos != nil {
		qs = s.qos.register(opts.batch)
		defer s.qos.unregister(qs)
	}
	origSearcher := cfg.Searcher
	cheapSearcher := &search.PBM{}

	// The response streams while the request body is still being read;
	// HTTP/1 needs full-duplex explicitly enabled (no-op error on HTTP/2).
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()

	w.Header().Set("Content-Type", ContentType)
	w.Header().Set("Trailer", strings.Join([]string{TrailerFrames, TrailerPSNRY, TrailerKbps, TrailerTargetKbps, TrailerQosLevel, TrailerQosTransitions, TrailerTrace, TrailerError}, ", "))

	// The labelled request context (see handleEncode) dies the moment the
	// client disconnects (or a fronting gateway abandons the attempt).
	// Every per-frame step checks it, so a dead session releases its
	// scheduler slot and pool share within one frame instead of encoding
	// the rest of a buffered upload into a socket nobody reads — small
	// packets can keep "succeeding" into kernel buffers long after the
	// peer is gone.

	begin := time.Now()
	// Emit-side stream state: owned by whichever goroutine runs the emit
	// callback (the pipeline writer), never shared.
	var lastEmit time.Time
	pw := codec.NewPacketWriter(w)
	es := codec.NewEncodeStream(cfg, func(p codec.Packet) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("client gone: %w", err)
		}
		emitStart := time.Now()
		if err := pw.WritePacket(p.Index, p.Data); err != nil {
			return err
		}
		// Flush per packet: this is what turns the response into a live
		// stream (first-byte latency of one frame) and what propagates a
		// slow client's backpressure into the encode loop.
		if err := rc.Flush(); err != nil {
			return err
		}
		emitDur := time.Since(emitStart)
		if s.qos != nil {
			s.qos.observe(0, emitDur)
		}
		s.hist.emit.Observe(emitDur)
		s.m.packetsTotal.Add(1)
		s.m.bytesOut.Add(int64(len(p.Data)))
		if p.Index > 0 {
			s.m.framesTotal.Add(1)
			rec.FrameEmitted(p.Index-1, emitDur)
			now := time.Now()
			if lastEmit.IsZero() {
				s.hist.firstPacket.Observe(now.Sub(begin))
			} else {
				s.hist.frameGap.Observe(now.Sub(lastEmit))
			}
			lastEmit = now
		}
		return nil
	})

	frames := 0
	var sessionErr error
	for {
		if err := ctx.Err(); err != nil {
			sessionErr = fmt.Errorf("client gone: %w", err)
			break
		}
		readStart := time.Now()
		f, err := y4m.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			sessionErr = err
			break
		}
		readDur := time.Since(readStart)
		rec.FrameRead(frames, readDur)
		s.hist.read.Observe(readDur)
		if s.cfg.MaxFramesPerSession > 0 && frames >= s.cfg.MaxFramesPerSession {
			sessionErr = fmt.Errorf("session frame cap (%d) exceeded", s.cfg.MaxFramesPerSession)
			break
		}
		// Frame hand-off is the only point a QoS level may change: the
		// actuation lands on the session goroutine before this frame's
		// analysis, so the stream stays deterministic for the actuation
		// schedule it actually received.
		if qs != nil {
			if t := int(qs.target.Load()); t != qosLevel {
				es.Actuate(qosActuationFor(t, origSearcher, cheapSearcher))
				rec.FrameActuated(frames, t)
				qosLevel = t
				qs.applied.Store(int32(t))
				if frames > 0 {
					qs.transitions.Add(1)
				}
				s.qos.actuations.Add(1)
			}
		}
		encStart := time.Now()
		if err := es.EncodeFrame(f); err != nil {
			sessionErr = err
			break
		}
		if s.qos != nil {
			s.qos.observe(time.Since(encStart), 0)
		}
		frames++
	}
	stats, closeErr := es.Close()
	if sessionErr == nil {
		sessionErr = closeErr
	}
	analysis, entropy := es.PhaseTimes()
	s.m.analysisNs.Add(analysis.Nanoseconds())
	s.m.entropyNs.Add(entropy.Nanoseconds())
	s.m.sessionNs.Add(time.Since(begin).Nanoseconds())

	// Declared trailers: set after the body, shipped with the final chunk.
	w.Header().Set(TrailerFrames, strconv.Itoa(frames))
	w.Header().Set(TrailerPSNRY, strconv.FormatFloat(stats.AvgPSNRY(), 'f', 2, 64))
	w.Header().Set(TrailerKbps, strconv.FormatFloat(stats.BitrateKbps(), 'f', 1, 64))
	if cfg.TargetKbps > 0 {
		w.Header().Set(TrailerTargetKbps, strconv.FormatFloat(cfg.TargetKbps, 'f', 1, 64))
		// Only completed sessions enter the tracking sums: a truncated
		// stream's bitrate (an I-frame-heavy prefix, or zero frames) would
		// skew the achieved/target ratio the metrics promise.
		if sessionErr == nil {
			s.m.rateSessions.Add(1)
			s.m.rateTargetMilliKbps.Add(int64(cfg.TargetKbps * 1000))
			s.m.rateAchievedMilliKbps.Add(int64(stats.BitrateKbps() * 1000))
		}
	}
	w.Header().Set(TrailerQosLevel, strconv.Itoa(qosLevel))
	transitions := 0
	if qs != nil {
		transitions = int(qs.transitions.Load())
	}
	w.Header().Set(TrailerQosTransitions, strconv.Itoa(transitions))
	w.Header().Set(TrailerTrace, traceID)
	rec.Finish(sessionErr)
	if sessionErr != nil {
		s.m.sessionsFailed.Add(1)
		w.Header().Set(TrailerError, sessionErr.Error())
		log.Printf("session %s failed after %d frames: %v", traceID, frames, sessionErr)
	}
}

// sessionObserver bridges codec.FrameObserver to a session's flight
// recorder and the server-wide latency histograms. Its methods run on
// the session goroutine (FrameAnalyzed) and the pipeline writer
// goroutine (FrameWritten); both targets are lock-free.
type sessionObserver struct {
	rec *obs.FlightRecorder
	h   *serverHists
}

func (o *sessionObserver) FrameAnalyzed(index int, wall, queueWait, maxStall time.Duration, intra bool, qp int) {
	o.rec.FrameAnalyzed(index, wall, queueWait, maxStall, intra, qp)
	o.h.analysis.Observe(wall)
	if queueWait > 0 {
		o.h.queueWait.Observe(queueWait)
	}
}

func (o *sessionObserver) FrameWritten(index int, wall time.Duration, bits int) {
	o.rec.FrameWritten(index, wall, bits)
	o.h.entropy.Observe(wall)
}

// sessionOpts carries the serving-layer (non-codec) session parameters.
type sessionOpts struct {
	// batch marks the session PriorityBatch on the shared pool (and
	// first in line for QoS degradation).
	batch bool
	// pinned, when ≥ 0, fixes the session's QoS level for its whole
	// lifetime, exempt from the controller. -1 = adaptive.
	pinned int
	// ladder, when non-empty, makes this a simulcast session encoding
	// every rung of the chain (top rung first).
	ladder []codec.RungSpec
	// newSearcher builds a fresh motion-searcher instance; set for ladder
	// sessions, where each rung needs its own (stateful searchers would
	// race across rung goroutines).
	newSearcher func() (search.Searcher, error)
}

// parseSessionConfig maps /encode query parameters onto a codec.Config:
// qp, me (searcher), entropy, gop, range, ap, deblock, kbps (target
// bitrate; frame-lag rate control) and budget (target motion-search
// positions/MB; the ACBM complexity servo). Rate profiles run at full
// pool parallelism — nothing here degrades the session to serial. The
// serving-layer parameters ride alongside: priority (live|batch pool
// tier) and qoslevel (pin the session at one degradation level).
func parseSessionConfig(q url.Values) (codec.Config, sessionOpts, error) {
	cfg := codec.Config{Qp: 16}
	opts := sessionOpts{pinned: -1}
	switch strings.ToLower(q.Get("priority")) {
	case "", "live":
	case "batch":
		opts.batch = true
	default:
		return cfg, opts, fmt.Errorf("unknown priority %q (want live|batch)", q.Get("priority"))
	}
	if v := q.Get("qoslevel"); v != "" {
		n, e := strconv.Atoi(v)
		if e != nil || n < 0 || n > MaxQosLevel {
			return cfg, opts, fmt.Errorf("bad qoslevel=%q (want 0..%d)", v, MaxQosLevel)
		}
		opts.pinned = n
	}
	var err error
	intArg := func(name string, def int) int {
		v := q.Get(name)
		if v == "" {
			return def
		}
		n, e := strconv.Atoi(v)
		if e != nil && err == nil {
			err = fmt.Errorf("bad %s=%q", name, v)
		}
		return n
	}
	boolArg := func(name string) bool {
		v := q.Get(name)
		if v == "" {
			return false
		}
		b, e := strconv.ParseBool(v)
		if e != nil && err == nil {
			err = fmt.Errorf("bad %s=%q", name, v)
		}
		return b
	}
	cfg.Qp = intArg("qp", 16)
	cfg.SearchRange = intArg("range", 0)
	cfg.IntraPeriod = intArg("gop", 0)
	cfg.AdvancedPrediction = boolArg("ap")
	cfg.Deblock = boolArg("deblock")
	if v := q.Get("kbps"); v != "" {
		kbps, e := strconv.ParseFloat(v, 64)
		if e != nil || kbps < 0 {
			return cfg, opts, fmt.Errorf("bad kbps=%q", v)
		}
		cfg.TargetKbps = kbps
	}
	if err != nil {
		return cfg, opts, err
	}
	if cfg.Qp < 1 || cfg.Qp > 31 {
		return cfg, opts, fmt.Errorf("qp %d out of range 1..31", cfg.Qp)
	}
	if cfg.Searcher, err = core.SearcherByName(q.Get("me")); err != nil {
		return cfg, opts, err
	}
	if v := q.Get("budget"); v != "" {
		target, e := strconv.ParseFloat(v, 64)
		if e != nil || target <= 0 {
			return cfg, opts, fmt.Errorf("bad budget=%q (want positive positions/MB)", v)
		}
		if me := strings.ToLower(q.Get("me")); me != "" && me != "acbm" {
			return cfg, opts, fmt.Errorf("budget requires the ACBM searcher (got me=%q)", q.Get("me"))
		}
		if cfg.Searcher, e = core.NewBudgeted(target, core.DefaultParams); e != nil {
			return cfg, opts, e
		}
	}
	switch strings.ToLower(q.Get("entropy")) {
	case "", "expgolomb", "eg":
		cfg.Entropy = codec.EntropyExpGolomb
	case "arith", "arithmetic", "sac":
		cfg.Entropy = codec.EntropyArith
	default:
		return cfg, opts, fmt.Errorf("unknown entropy backend %q", q.Get("entropy"))
	}
	if v := q.Get("ladder"); v != "" {
		specs, e := codec.ParseLadderSpec(v)
		if e != nil {
			return cfg, opts, e
		}
		if cfg.TargetKbps > 0 {
			return cfg, opts, fmt.Errorf("kbps is per-rung in a ladder session (use ladder=WxH@kbps)")
		}
		opts.ladder = specs
		// Rebuild the searcher per rung from the same query parameters the
		// single-session path used — fresh instances, identical config.
		meName, budgetV := q.Get("me"), q.Get("budget")
		opts.newSearcher = func() (search.Searcher, error) {
			if budgetV != "" {
				target, e := strconv.ParseFloat(budgetV, 64)
				if e != nil {
					return nil, fmt.Errorf("bad budget=%q", budgetV)
				}
				b, e := core.NewBudgeted(target, core.DefaultParams)
				if e != nil {
					return nil, e
				}
				return b, nil
			}
			return core.SearcherByName(meName)
		}
	}
	return cfg, opts, nil
}
