package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/video"
)

// y4mBody serialises frames as an in-memory Y4M upload.
func y4mBody(t *testing.T, frames []*frame.Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := frame.WriteY4M(&buf, frames, 30, 1); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readPackets drains a framed packet response into index order, failing
// on gaps (the server never drops packets).
func readPackets(t *testing.T, r io.Reader) [][]byte {
	t.Helper()
	pr := codec.NewPacketReader(r)
	var pkts [][]byte
	for {
		idx, data, err := pr.ReadPacket()
		if err == io.EOF {
			return pkts
		}
		if err != nil {
			t.Fatalf("packet %d: %v", len(pkts), err)
		}
		if idx != len(pkts) {
			t.Fatalf("packet index %d, want %d", idx, len(pkts))
		}
		pkts = append(pkts, data)
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Drain(context.Background()); err != nil {
			t.Errorf("drain: %v", err)
		}
		s.Close()
	})
	return s, ts
}

// TestEncodeRoundTrip uploads a Y4M, decodes the streamed packets and
// checks both byte-identity with the offline packet encoder and the PSNR
// of the decoded frames against the offline reconstruction.
func TestEncodeRoundTrip(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.SQCIF, 6, 7)
	_, ts := newTestServer(t, Config{})

	resp, err := http.Post(ts.URL+"/encode?qp=14&me=acbm&entropy=arith&qoslevel=0", "video/x-yuv4mpeg",
		bytes.NewReader(y4mBody(t, frames)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type %q", ct)
	}
	pkts := readPackets(t, resp.Body)
	if errT := resp.Trailer.Get(TrailerError); errT != "" {
		t.Fatalf("error trailer: %s", errT)
	}
	if got := resp.Trailer.Get(TrailerFrames); got != strconv.Itoa(len(frames)) {
		t.Fatalf("frames trailer %q, want %d", got, len(frames))
	}

	// Byte-identity with the offline encoder.
	want, wantStats, err := codec.EncodePackets(codec.Config{
		Qp: 14, FPS: 30, Entropy: codec.EntropyArith,
		Searcher: core.New(core.DefaultParams), Workers: 1,
	}, frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != len(want) {
		t.Fatalf("%d packets, want %d", len(pkts), len(want))
	}
	for i := range want {
		if !bytes.Equal(pkts[i], want[i]) {
			t.Fatalf("packet %d differs from offline encoder", i)
		}
	}

	// Decode and compare PSNR with the offline encode's statistics.
	dec, err := codec.NewPacketDecoder(pkts[0])
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i, pkt := range pkts[1:] {
		f, err := dec.DecodePacket(pkt)
		if err != nil {
			t.Fatalf("decode packet %d: %v", i+1, err)
		}
		p, _ := frame.PSNR(frames[i].Y, f.Y)
		sum += p
	}
	avg := sum / float64(len(frames))
	if diff := avg - wantStats.AvgPSNRY(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("decoded PSNR-Y %.6f, offline %.6f", avg, wantStats.AvgPSNRY())
	}
	if got := resp.Trailer.Get(TrailerPSNRY); got != fmt.Sprintf("%.2f", wantStats.AvgPSNRY()) {
		t.Fatalf("PSNR trailer %q, offline %.2f", got, wantStats.AvgPSNRY())
	}
}

// TestConcurrentSessionsByteIdentical is the acceptance gate: 8 sessions
// encode at once on the shared pool and every streamed bitstream must be
// byte-identical to the offline encoder. The sessions pin qoslevel=0 —
// the documented way to demand constant quality — so the QoS controller
// cannot trade quality for latency mid-test. Run under -race by make
// test.
func TestConcurrentSessionsByteIdentical(t *testing.T) {
	const sessions = 8
	frames := video.Generate(video.Carphone, frame.SQCIF, 5, 9)
	body := y4mBody(t, frames)
	want, _, err := codec.EncodePackets(codec.Config{
		Qp: 15, FPS: 30, Searcher: core.New(core.DefaultParams), Workers: 1,
	}, frames)
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{MaxSessions: sessions})
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/encode?qp=15&qoslevel=0", "video/x-yuv4mpeg", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			pr := codec.NewPacketReader(resp.Body)
			for n := 0; ; n++ {
				idx, data, err := pr.ReadPacket()
				if err == io.EOF {
					if n != len(want) {
						errs[i] = fmt.Errorf("session %d: %d packets, want %d", i, n, len(want))
					}
					return
				}
				if err != nil {
					errs[i] = fmt.Errorf("session %d packet %d: %w", i, n, err)
					return
				}
				if idx != n || !bytes.Equal(data, want[n]) {
					errs[i] = fmt.Errorf("session %d: packet %d differs from offline encoder", i, n)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestRateControlledSessionsTrackTargets pins the per-session rate
// profiles: two concurrent sessions with different kbps targets run on
// the shared pool at full parallelism, and each must (a) stream packets
// byte-identical to the offline rate-controlled encoder with the same
// config, (b) report an achieved TrailerKbps within the rate controller's
// tolerance of its own target, and (c) echo the target in
// TrailerTargetKbps. Run under -race by make test.
func TestRateControlledSessionsTrackTargets(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.QCIF, 40, 1)
	body := y4mBody(t, frames)
	_, ts := newTestServer(t, Config{MaxSessions: 4})

	targets := []float64{30, 80}
	offline := make([][][]byte, len(targets))
	for i, target := range targets {
		pkts, _, err := codec.EncodePackets(codec.Config{
			Qp: 16, FPS: 30, TargetKbps: target,
			Searcher: core.New(core.DefaultParams), Workers: 1,
		}, frames)
		if err != nil {
			t.Fatal(err)
		}
		offline[i] = pkts
	}

	var wg sync.WaitGroup
	errs := make([]error, len(targets))
	for i, target := range targets {
		wg.Add(1)
		go func(i int, target float64) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				errs[i] = fmt.Errorf("target %g: %s", target, fmt.Sprintf(format, args...))
			}
			resp, err := http.Post(fmt.Sprintf("%s/encode?qp=16&kbps=%g&qoslevel=0", ts.URL, target),
				"video/x-yuv4mpeg", bytes.NewReader(body))
			if err != nil {
				fail("%v", err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(resp.Body)
				fail("status %d: %s", resp.StatusCode, msg)
				return
			}
			pr := codec.NewPacketReader(resp.Body)
			var pkts [][]byte
			for {
				idx, data, err := pr.ReadPacket()
				if err == io.EOF {
					break
				}
				if err != nil {
					fail("packet %d: %v", len(pkts), err)
					return
				}
				if idx != len(pkts) {
					fail("packet index %d, want %d", idx, len(pkts))
					return
				}
				pkts = append(pkts, data)
			}
			if errT := resp.Trailer.Get(TrailerError); errT != "" {
				fail("error trailer: %s", errT)
				return
			}
			if len(pkts) != len(offline[i]) {
				fail("%d packets, offline %d", len(pkts), len(offline[i]))
				return
			}
			for n := range offline[i] {
				if !bytes.Equal(pkts[n], offline[i][n]) {
					fail("packet %d differs from offline rate-controlled encoder", n)
					return
				}
			}
			if got := resp.Trailer.Get(TrailerTargetKbps); got != fmt.Sprintf("%.1f", target) {
				fail("target trailer %q", got)
				return
			}
			kbps, err := strconv.ParseFloat(resp.Trailer.Get(TrailerKbps), 64)
			if err != nil {
				fail("kbps trailer %q: %v", resp.Trailer.Get(TrailerKbps), err)
				return
			}
			// Same band as TestRateControlTracksTarget: the I-frame cannot
			// be rate-controlled away.
			if kbps < target*0.6 || kbps > target*1.6 {
				fail("achieved %.1f kbit/s outside tolerance", kbps)
			}
		}(i, target)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestBudgetSessionParam pins the budget query param: a complexity-
// budgeted session must match the offline core.Budgeted encode byte for
// byte, and contradictory or malformed rate parameters must 400.
func TestBudgetSessionParam(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.SQCIF, 6, 7)
	body := y4mBody(t, frames)
	_, ts := newTestServer(t, Config{})

	b, err := core.NewBudgeted(150, core.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := codec.EncodePackets(codec.Config{
		Qp: 14, FPS: 30, Searcher: b, Workers: 1,
	}, frames)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/encode?qp=14&budget=150&qoslevel=0", "video/x-yuv4mpeg", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	pkts := readPackets(t, resp.Body)
	if errT := resp.Trailer.Get(TrailerError); errT != "" {
		t.Fatalf("error trailer: %s", errT)
	}
	if len(pkts) != len(want) {
		t.Fatalf("%d packets, offline %d", len(pkts), len(want))
	}
	for i := range want {
		if !bytes.Equal(pkts[i], want[i]) {
			t.Fatalf("packet %d differs from offline budgeted encoder", i)
		}
	}

	for _, q := range []string{"budget=0", "budget=-5", "budget=abc", "budget=150&me=fsbm", "kbps=-1", "kbps=abc"} {
		resp, err := http.Post(ts.URL+"/encode?"+q, "video/x-yuv4mpeg", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// blockingWriter is an http.ResponseWriter whose Write blocks once its
// byte budget is spent — a slow client without kernel socket buffers in
// the way, so the backpressure assertion is deterministic.
type blockingWriter struct {
	h       http.Header
	mu      sync.Mutex
	cond    *sync.Cond
	budget  int
	written int
}

func newBlockingWriter(budget int) *blockingWriter {
	w := &blockingWriter{h: make(http.Header), budget: budget}
	w.cond = sync.NewCond(&w.mu)
	return w
}

func (w *blockingWriter) Header() http.Header { return w.h }
func (w *blockingWriter) WriteHeader(int)     {}
func (w *blockingWriter) Flush()              {}

func (w *blockingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.written+len(p) > w.budget {
		w.cond.Wait()
	}
	w.written += len(p)
	return len(p), nil
}

func (w *blockingWriter) bytesWritten() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.written
}

func (w *blockingWriter) release() {
	w.mu.Lock()
	w.budget = 1 << 30
	w.mu.Unlock()
	w.cond.Broadcast()
}

// TestSlowReaderBackpressure: when the client stops reading, the session
// must stall after at most one in-flight frame instead of encoding (and
// buffering) the rest of the upload.
func TestSlowReaderBackpressure(t *testing.T) {
	const total = 10
	frames := video.Generate(video.Foreman, frame.SQCIF, total, 11)
	s := New(Config{})
	defer func() {
		if err := s.Drain(context.Background()); err != nil {
			t.Error(err)
		}
		s.Close()
	}()

	// Budget: exactly the framed header packet plus the first frame
	// packet, computed from an offline encode of the same configuration;
	// the second frame packet's Write blocks.
	want, _, err := codec.EncodePackets(codec.Config{
		Qp: 12, FPS: 30, Searcher: core.New(core.DefaultParams), Workers: 1,
	}, frames)
	if err != nil {
		t.Fatal(err)
	}
	framedLen := func(data []byte) int {
		var buf bytes.Buffer
		if err := codec.NewPacketWriter(&buf).WritePacket(1, data); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	hdrLen := framedLen(want[0])
	budget := hdrLen + framedLen(want[1])
	w := newBlockingWriter(budget)
	req := httptest.NewRequest(http.MethodPost, "/encode?qp=12", bytes.NewReader(y4mBody(t, frames)))
	done := make(chan struct{})
	go func() {
		s.handleEncode(w, req)
		close(done)
	}()

	// The encode must stall: frames emitted stays at ~1 (the packet stuck
	// in the blocked Write doesn't count — its emit hasn't returned).
	deadline := time.After(3 * time.Second)
	for {
		if w.bytesWritten() > hdrLen { // first frame packet went through
			break
		}
		select {
		case <-deadline:
			t.Fatal("no packet emitted")
		case <-time.After(time.Millisecond):
		}
	}
	time.Sleep(300 * time.Millisecond) // give a runaway encoder time to hang itself
	if n := s.m.framesTotal.Load(); n > 3 {
		t.Fatalf("%d frames encoded against a blocked client (want ≤ 3 in flight)", n)
	}
	select {
	case <-done:
		t.Fatal("handler returned while client was blocked")
	default:
	}

	// Release the client: the session must finish all frames cleanly.
	w.release()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not finish after release")
	}
	if n := s.m.framesTotal.Load(); n != total {
		t.Fatalf("%d frames after release, want %d", n, total)
	}
	if errT := w.h.Get(TrailerError); errT != "" {
		t.Fatalf("error trailer: %s", errT)
	}
}

// TestGracefulDrain: draining rejects new sessions with 503 but lets the
// in-flight session stream to completion.
func TestGracefulDrain(t *testing.T) {
	frames := video.Generate(video.Carphone, frame.SQCIF, 3, 2)
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	// Stream the upload through a pipe so the session stays open until we
	// decide to finish it.
	pr, pw := io.Pipe()
	respCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/encode?qp=20", "video/x-yuv4mpeg", pr)
		if err != nil {
			errCh <- err
			return
		}
		respCh <- resp
	}()
	body := y4mBody(t, frames)
	split := bytes.Index(body, []byte("FRAME"))                      // end of stream header
	split = bytes.Index(body[split+1:], []byte("FRAME")) + split + 1 // end of frame 0
	if _, err := pw.Write(body[:split]); err != nil {
		t.Fatal(err)
	}
	var resp *http.Response
	select {
	case resp = <-respCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("no response while session active")
	}
	defer resp.Body.Close()

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// New sessions must now be rejected…
	deadline := time.Now().Add(5 * time.Second)
	for {
		r2, err := http.Post(ts.URL+"/encode?qp=20", "video/x-yuv4mpeg", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r2.Body)
		r2.Body.Close()
		if r2.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("new session got %d during drain, want 503", r2.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if r, err := http.Get(ts.URL + "/healthz"); err == nil {
		if r.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("healthz %d during drain, want 503", r.StatusCode)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}

	// …while the in-flight session still completes.
	select {
	case err := <-drained:
		t.Fatalf("drain returned (%v) before the session finished", err)
	default:
	}
	if _, err := pw.Write(body[split:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	pkts := readPackets(t, resp.Body)
	if len(pkts) != len(frames)+1 {
		t.Fatalf("%d packets, want %d", len(pkts), len(frames)+1)
	}
	if errT := resp.Trailer.Get(TrailerError); errT != "" {
		t.Fatalf("error trailer: %s", errT)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not return after the session finished")
	}
}

// TestAdmissionControl: with one slot and no queue, a second concurrent
// session is rejected with 503; with a queue it waits and succeeds.
func TestAdmissionControl(t *testing.T) {
	frames := video.Generate(video.Foreman, frame.SQCIF, 2, 4)
	body := y4mBody(t, frames)

	s, ts := newTestServer(t, Config{MaxSessions: 1, MaxQueued: 1})

	// Occupy the slot with a held-open session.
	pr, pw := io.Pipe()
	go http.Post(ts.URL+"/encode", "video/x-yuv4mpeg", pr)
	hdr := body[:bytes.Index(body, []byte("FRAME"))]
	if _, err := pw.Write(hdr); err != nil {
		t.Fatal(err)
	}
	waitActive := func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if a, _ := s.sched.counts(); a == 1 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatal("session never became active")
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitActive()

	// Fill the one queue slot with another held-open session.
	pr2, pw2 := io.Pipe()
	go http.Post(ts.URL+"/encode", "video/x-yuv4mpeg", pr2)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, q := s.sched.counts(); q == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second session never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue is now full: a third session must fail fast.
	resp, err := http.Post(ts.URL+"/encode", "video/x-yuv4mpeg", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third session got %d, want 503", resp.StatusCode)
	}
	if s.m.sessionsRejected.Load() == 0 {
		t.Fatal("rejection not counted")
	}
	pw.Close()
	pw2.Close()

	// Metrics endpoint exposes the counters.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{"vcodecd_sessions_rejected_total 1", "vcodecd_pool_workers", "vcodecd_frames_total"} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestBadRequests: malformed uploads and parameters fail with 400 before
// a session burns pool time.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		url  string
		body string
	}{
		{"/encode?qp=99", "YUV4MPEG2 W128 H96\n"},           // qp out of range
		{"/encode?me=warp", "YUV4MPEG2 W128 H96\n"},         // unknown searcher
		{"/encode?entropy=huffman", "YUV4MPEG2 W128 H96\n"}, // unknown backend
		{"/encode", "not a y4m stream\n"},                   // bad magic
		{"/encode", "YUV4MPEG2 W100 H96\n"},                 // not macroblock-divisible
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.url, "video/x-yuv4mpeg", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", c.url, resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/encode"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /encode: %d, want 405", resp.StatusCode)
		}
	}
}

// TestClientDisconnectTeardown: a client that vanishes mid-stream must
// tear its session down within about a frame — not encode the rest of an
// already-buffered upload into socket buffers nobody reads. This is the
// path a fronting gateway's retries exercise: an abandoned attempt closes
// the connection with the upload fully sent, and the freed slot and pool
// share must be available for the retried session immediately.
func TestClientDisconnectTeardown(t *testing.T) {
	const total = 90
	frames := video.Generate(video.Foreman, frame.SQCIF, total, 11)
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/encode?qp=16", bytes.NewReader(y4mBody(t, frames)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "video/x-yuv4mpeg")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Read exactly one record (the session is demonstrably streaming),
	// then vanish: cancelling the request context closes the connection.
	if _, _, err := codec.NewPacketReader(resp.Body).ReadPacket(); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	// The session must release its scheduler slot promptly…
	deadline := time.Now().Add(10 * time.Second)
	for {
		if active, _ := s.sched.counts(); active == 0 {
			break
		}
		if time.Now().After(deadline) {
			active, _ := s.sched.counts()
			t.Fatalf("%d sessions still active long after disconnect", active)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// …as a failed session that stopped encoding well short of the clip:
	// the upload was fully transferred before the disconnect, so only the
	// per-frame context checks can have stopped the loop.
	if n := s.m.sessionsFailed.Load(); n != 1 {
		t.Fatalf("sessionsFailed %d, want 1", n)
	}
	if n := s.m.framesTotal.Load(); n >= total {
		t.Fatalf("encoded all %d frames for a dead client", n)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
