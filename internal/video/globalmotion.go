package video

import (
	"repro/internal/frame"
	"repro/internal/mvfield"
)

// The Fig. 4 preliminary study generates a ten-frame sequence from one
// reference frame by applying nine perfectly known global motion vectors,
// then checks FSBM's output against them block by block.

// DefaultGlobalMVs are nine displacement vectors (full pels, within the
// paper's p=15 search range) covering slow and fast, axis-aligned and
// diagonal motion.
var DefaultGlobalMVs = []mvfield.MV{
	mvfield.FromFullPel(3, 0),
	mvfield.FromFullPel(-2, 1),
	mvfield.FromFullPel(0, 4),
	mvfield.FromFullPel(5, -3),
	mvfield.FromFullPel(-4, -2),
	mvfield.FromFullPel(1, 1),
	mvfield.FromFullPel(-7, 5),
	mvfield.FromFullPel(2, -6),
	mvfield.FromFullPel(9, 2),
}

// GlobalMotionSequence builds a len(mvs)+1 frame luma sequence where frame
// i+1 is frame i translated by exactly mvs[i] (full-pel, edge-replicated).
// The true motion vector of every interior block between consecutive
// frames is therefore known exactly.
func GlobalMotionSequence(ref *frame.Plane, mvs []mvfield.MV) ([]*frame.Plane, error) {
	out := make([]*frame.Plane, 0, len(mvs)+1)
	out = append(out, ref.Clone())
	cur := ref
	for i, mv := range mvs {
		if !mv.IsFullPel() {
			return nil, &BadMVError{Index: i, MV: mv}
		}
		dx, dy := mv.FullPel()
		next := cur.Shift(dx, dy)
		out = append(out, next)
		cur = next
	}
	return out, nil
}

// BadMVError reports a half-pel vector passed to GlobalMotionSequence,
// which only supports full-pel global displacements.
type BadMVError struct {
	Index int
	MV    mvfield.MV
}

func (e *BadMVError) Error() string {
	return "video: global motion vector " + e.MV.String() + " is not full-pel"
}

// ReferenceFrame renders frame 0 of a profile as the study's original
// reference frame.
func ReferenceFrame(p Profile, size frame.Size, seed uint64) *frame.Plane {
	return p.Scene(seed).Render(size, 0).Y
}
