package video

import "math"

// Noise is seeded value noise: a random lattice interpolated with a
// smoothstep kernel, summed over octaves (fractional Brownian motion).
// It is continuous in (x, y), so camera pans and sprite motion produce
// genuine subpixel translation — exactly what half-pel motion estimation
// needs to be exercised meaningfully.
type Noise struct {
	Seed    uint64
	Scale   float64 // lattice spacing in pixels of the base octave
	Octaves int     // number of octaves (≥1); each halves the scale
}

// smoothstep interpolation weight.
func smooth(t float64) float64 { return t * t * (3 - 2*t) }

// octave samples one noise octave with lattice spacing s.
func (n *Noise) octave(x, y float64, oct int) float64 {
	s := n.Scale / float64(int64(1)<<uint(oct))
	if s < 1 {
		s = 1
	}
	fx, fy := x/s, y/s
	ix, iy := math.Floor(fx), math.Floor(fy)
	tx, ty := smooth(fx-ix), smooth(fy-iy)
	x0, y0 := int64(ix), int64(iy)
	seed := n.Seed + uint64(oct)*0x1000193
	v00 := hash2(seed, x0, y0)
	v10 := hash2(seed, x0+1, y0)
	v01 := hash2(seed, x0, y0+1)
	v11 := hash2(seed, x0+1, y0+1)
	a := v00 + (v10-v00)*tx
	b := v01 + (v11-v01)*tx
	return a + (b-a)*ty
}

// At returns the fBm value at (x, y) in [0, 1). Octave amplitudes halve,
// normalised so the expected range stays in [0, 1).
func (n *Noise) At(x, y float64) float64 {
	oct := n.Octaves
	if oct < 1 {
		oct = 1
	}
	sum, amp, norm := 0.0, 1.0, 0.0
	for o := 0; o < oct; o++ {
		sum += amp * n.octave(x, y, o)
		norm += amp
		amp *= 0.5
	}
	return sum / norm
}
