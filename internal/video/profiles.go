package video

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/frame"
)

// Profile selects one of the four synthetic stand-ins for the paper's test
// sequences. Each profile matches its namesake's texture level and motion
// character, the two properties that drive ACBM's behaviour.
type Profile int

const (
	// MissAmerica: head-and-shoulders talking head on a smooth dark
	// background; very low texture, very slow coherent motion. The
	// cheapest sequence in the paper's Table 1.
	MissAmerica Profile = iota
	// Carphone: talking head inside a car; moderate texture, moderate
	// head motion, fast scenery streaming past the side window.
	Carphone
	// Foreman: highly textured close-up with camera shake and an abrupt
	// pan in the final third. The most expensive sequence in Table 1.
	Foreman
	// TableTennis: camera zoom-out over a textured scene with a small
	// fast-moving ball and an oscillating paddle.
	TableTennis
)

// Profiles lists all profiles in the paper's column order.
var Profiles = []Profile{Carphone, Foreman, MissAmerica, TableTennis}

// String returns the sequence name as used in the paper's tables.
func (p Profile) String() string {
	switch p {
	case MissAmerica:
		return "Miss America"
	case Carphone:
		return "Carphone"
	case Foreman:
		return "Foreman"
	case TableTennis:
		return "Table"
	}
	return fmt.Sprintf("Profile(%d)", int(p))
}

// Scene builds the profile's scene graph. The seed decorrelates textures
// between runs while keeping each run fully deterministic.
func (p Profile) Scene(seed uint64) *Scene {
	switch p {
	case MissAmerica:
		return missAmericaScene(seed)
	case Carphone:
		return carphoneScene(seed)
	case Foreman:
		return foremanScene(seed)
	case TableTennis:
		return tableScene(seed)
	}
	panic(fmt.Sprintf("video: unknown profile %d", int(p)))
}

// Generate renders n frames of the profile at the given size and base rate
// of 30 frames per second.
func Generate(p Profile, size frame.Size, n int, seed uint64) []*frame.Frame {
	sc := p.Scene(seed)
	frames := make([]*frame.Frame, n)
	for t := 0; t < n; t++ {
		frames[t] = sc.Render(size, t)
	}
	return frames
}

// Decimate keeps every factor-th frame, converting a 30 fps sequence to
// 15 fps (factor 2) or 10 fps (factor 3) as in the paper's evaluation.
func Decimate(frames []*frame.Frame, factor int) []*frame.Frame {
	if factor <= 1 {
		out := make([]*frame.Frame, len(frames))
		copy(out, frames)
		return out
	}
	var out []*frame.Frame
	for i := 0; i < len(frames); i += factor {
		out = append(out, frames[i])
	}
	return out
}

func missAmericaScene(seed uint64) *Scene {
	// Static camera, smooth background, gently swaying head and shoulders.
	head := &Sprite{
		CX: func(t int) float64 { return 2.5 * math.Sin(float64(t)*0.08) },
		CY: func(t int) float64 { return -18 + 1.2*math.Sin(float64(t)*0.05+1) },
		RX: 26, RY: 34,
		Tex:  Noise{Seed: seed ^ 0xA1, Scale: 26, Octaves: 2},
		Base: 155, Amp: 12, Cb: -6, Cr: 14,
		TexLocked: true,
	}
	shoulders := &Sprite{
		CX: func(t int) float64 { return 1.5 * math.Sin(float64(t)*0.08) },
		CY: func(t int) float64 { return 62 },
		RX: 70, RY: 40,
		Tex:  Noise{Seed: seed ^ 0xA2, Scale: 42, Octaves: 2},
		Base: 95, Amp: 7, Cb: 10, Cr: -4,
		TexLocked: true,
	}
	return &Scene{
		Layers: []Layer{
			&Background{Tex: Noise{Seed: seed ^ 0xA0, Scale: 56, Octaves: 2}, Base: 60, Amp: 4, Cb: 2, Cr: -2},
			&Gradient{Top: 70, Bottom: 45, SpanY: 160, Strength: 0.35},
			shoulders,
			head,
		},
	}
}

func carphoneScene(seed uint64) *Scene {
	// Car interior: moderate texture, a side window with fast-streaming
	// scenery, and a livelier talking head than Miss America.
	window := &Window{
		X0: 40, Y0: -66, X1: 86, Y1: -10,
		Tex:  Noise{Seed: seed ^ 0xB1, Scale: 10, Octaves: 3},
		Base: 150, Amp: 60, Cb: -12, Cr: -6,
		ScrollX: func(t int) float64 { return 4.0 * float64(t) },
	}
	head := &Sprite{
		CX: func(t int) float64 {
			return -20 + 3.5*math.Sin(float64(t)*0.17) + 1.5*math.Sin(float64(t)*0.31)
		},
		CY: func(t int) float64 { return -8 + 2.0*math.Sin(float64(t)*0.11+0.7) },
		RX: 24, RY: 31,
		Tex:  Noise{Seed: seed ^ 0xB2, Scale: 12, Octaves: 3},
		Base: 160, Amp: 34, Cb: -8, Cr: 16,
		TexLocked: true,
	}
	body := &Sprite{
		CX: func(t int) float64 { return -18 + 2.5*math.Sin(float64(t)*0.17) },
		CY: func(t int) float64 { return 58 },
		RX: 55, RY: 38,
		Tex:  Noise{Seed: seed ^ 0xB3, Scale: 16, Octaves: 2},
		Base: 80, Amp: 26, Cb: 6, Cr: -6,
		TexLocked: true,
	}
	return &Scene{
		Layers: []Layer{
			&Background{Tex: Noise{Seed: seed ^ 0xB0, Scale: 20, Octaves: 3}, Base: 100, Amp: 28, Cb: 4, Cr: 2},
			window,
			body,
			head,
		},
	}
}

func foremanScene(seed uint64) *Scene {
	// High-frequency texture everywhere, hand-held camera shake, and an
	// abrupt pan starting at frame 40 (the construction-site sweep). The
	// pan speed keeps the 10 fps frame-to-frame displacement within the
	// p=15 search range (3.5 px/frame = 10.5 px between decimated frames).
	panX := func(t int) float64 {
		base := 3.0*math.Sin(float64(t)*0.23) + 1.8*math.Sin(float64(t)*0.57+2)
		if t > 40 {
			base += 3.5 * float64(t-40)
		}
		return base
	}
	panY := func(t int) float64 {
		return 2.2*math.Sin(float64(t)*0.31+1) + 1.2*math.Sin(float64(t)*0.71)
	}
	face := &Sprite{
		CX: func(t int) float64 { return 4.0 * math.Sin(float64(t)*0.13) },
		CY: func(t int) float64 { return -5 + 3.0*math.Sin(float64(t)*0.19+0.5) },
		RX: 34, RY: 44,
		Tex:  Noise{Seed: seed ^ 0xC1, Scale: 4, Octaves: 3},
		Base: 140, Amp: 80, Cb: -10, Cr: 18,
		TexLocked: true,
	}
	return &Scene{
		Layers: []Layer{
			&Background{Tex: Noise{Seed: seed ^ 0xC0, Scale: 4, Octaves: 3}, Base: 110, Amp: 95, Cb: -4, Cr: 6},
			face,
		},
		Camera: Camera{PanX: panX, PanY: panY},
	}
}

func tableScene(seed uint64) *Scene {
	// Slow zoom-out with a mild pan; a small fast ball bounces across the
	// table while a paddle oscillates.
	ball := &Sprite{
		CX: func(t int) float64 {
			// Triangle-wave horizontal bounce, ~9 px/frame.
			period := 36.0
			ph := math.Mod(float64(t), period) / period
			if ph < 0.5 {
				return -80 + 320*ph
			}
			return 80 - 320*(ph-0.5)
		},
		CY: func(t int) float64 {
			return 10 - 42*math.Abs(math.Sin(float64(t)*0.26))
		},
		RX: 5, RY: 5,
		Tex:  Noise{Seed: seed ^ 0xD1, Scale: 4, Octaves: 1},
		Base: 230, Amp: 10, Cb: -4, Cr: 4,
		TexLocked: true,
	}
	paddle := &Sprite{
		CX: func(t int) float64 { return 60 + 6.0*math.Sin(float64(t)*0.26) },
		CY: func(t int) float64 { return 28 + 10.0*math.Sin(float64(t)*0.26+1.3) },
		RX: 9, RY: 14,
		Rect: true,
		Tex:  Noise{Seed: seed ^ 0xD2, Scale: 8, Octaves: 2},
		Base: 70, Amp: 20, Cb: 8, Cr: 22,
		TexLocked: true,
	}
	table := &Sprite{
		CX: func(t int) float64 { return 0 },
		CY: func(t int) float64 { return 55 },
		RX: 110, RY: 28,
		Rect: true,
		Tex:  Noise{Seed: seed ^ 0xD3, Scale: 22, Octaves: 2},
		Base: 120, Amp: 16, Cb: -14, Cr: -10,
	}
	return &Scene{
		Layers: []Layer{
			&Background{Tex: Noise{Seed: seed ^ 0xD0, Scale: 14, Octaves: 3}, Base: 95, Amp: 38, Cb: 2, Cr: -2},
			table,
			paddle,
			ball,
		},
		Camera: Camera{
			PanX: func(t int) float64 { return 0.4 * float64(t) },
			Zoom: func(t int) float64 { return 1.0 / (1.0 + 0.0012*float64(t)) }, // slow zoom-out
		},
	}
}

// ProfileByName parses the CLI vocabulary shared by cmd/seqgen,
// cmd/mvstudy and cmd/vload's -profile flags.
func ProfileByName(name string) (Profile, error) {
	switch strings.ToLower(name) {
	case "carphone":
		return Carphone, nil
	case "foreman":
		return Foreman, nil
	case "missamerica", "miss-america":
		return MissAmerica, nil
	case "table", "tabletennis":
		return TableTennis, nil
	}
	return 0, fmt.Errorf("unknown profile %q (want carphone, foreman, missamerica or table)", name)
}
