// Package video synthesises deterministic test sequences that substitute
// for the standard clips the paper evaluates on (Carphone, Foreman, Miss
// America, Table). A small procedural scene engine — value-noise textures,
// elliptical/rectangular sprites and an animated camera — reproduces the
// properties ACBM is sensitive to: per-block texture (Intra_SAD) and
// motion-field coherence. Four profiles mimic the four sequences' texture
// level and motion character; a global-motion generator reproduces the
// move-then-search setup of the paper's Fig. 4 study.
package video

// rng is a deterministic xorshift64* generator. Sequences depend only on
// their seed, never on global state, so every experiment is reproducible.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 2685821657736338717
}

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// hash2 maps lattice coordinates to a uniform value in [0, 1), mixing in
// the seed. It is stateless: the same (seed, x, y) always yields the same
// value, which lets noise be sampled at arbitrary subpixel positions.
func hash2(seed uint64, x, y int64) float64 {
	h := seed
	h ^= uint64(x) * 0x9E3779B97F4A7C15
	h = (h ^ h>>30) * 0xBF58476D1CE4E5B9
	h ^= uint64(y) * 0xC2B2AE3D27D4EB4F
	h = (h ^ h>>27) * 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}
