package video

import (
	"math"

	"repro/internal/frame"
)

// Sample is one composited colour sample: luma plus chroma offsets from
// the neutral 128.
type Sample struct {
	Y      float64
	Cb, Cr float64
}

// Layer contributes colour at world positions. Layers are composited in
// order; alpha is the coverage in [0, 1].
type Layer interface {
	Sample(x, y float64, t int) (s Sample, alpha float64)
}

// Camera maps screen pixels to world coordinates with pan and zoom. Zoom
// greater than 1 magnifies (world window shrinks); the pan is the world
// position of the viewport centre.
type Camera struct {
	PanX, PanY func(t int) float64
	Zoom       func(t int) float64 // nil means constant 1
}

func (c Camera) world(px, py float64, w, h int, t int) (float64, float64) {
	z := 1.0
	if c.Zoom != nil {
		z = c.Zoom(t)
	}
	cx, cy := 0.0, 0.0
	if c.PanX != nil {
		cx = c.PanX(t)
	}
	if c.PanY != nil {
		cy = c.PanY(t)
	}
	return cx + (px-float64(w)/2)/z, cy + (py-float64(h)/2)/z
}

// Scene is an ordered stack of layers viewed through a camera.
type Scene struct {
	Layers []Layer
	Camera Camera
	// SensorAmp adds zero-mean per-frame luma noise of ±SensorAmp to
	// every rendered pixel — camera sensor noise, which the original
	// sequences have and clean synthesis lacks. It raises the SAD floor
	// of even perfect matches, which is what keeps real-world PBM
	// matches from looking "free" to ACBM's conditions.
	SensorAmp  float64
	SensorSeed uint64
}

// WithSensorNoise returns sc with per-frame sensor noise enabled.
func WithSensorNoise(sc *Scene, amp float64, seed uint64) *Scene {
	sc.SensorAmp = amp
	sc.SensorSeed = seed ^ 0x5EED
	return sc
}

// sampleWorld composites all layers at a world position.
func (sc *Scene) sampleWorld(x, y float64, t int) Sample {
	out := Sample{Y: 128}
	for _, l := range sc.Layers {
		s, a := l.Sample(x, y, t)
		if a <= 0 {
			continue
		}
		if a >= 1 {
			out = s
			continue
		}
		out.Y = out.Y*(1-a) + s.Y*a
		out.Cb = out.Cb*(1-a) + s.Cb*a
		out.Cr = out.Cr*(1-a) + s.Cr*a
	}
	return out
}

// Render rasterises frame t of the scene at the given size (4:2:0 output).
// Luma samples at pixel centres; chroma at the centres of 2×2 luma groups.
func (sc *Scene) Render(size frame.Size, t int) *frame.Frame {
	f := frame.NewFrame(size)
	for py := 0; py < size.H; py++ {
		row := f.Y.Row(py)
		for px := 0; px < size.W; px++ {
			wx, wy := sc.Camera.world(float64(px)+0.5, float64(py)+0.5, size.W, size.H, t)
			s := sc.sampleWorld(wx, wy, t)
			y := s.Y
			if sc.SensorAmp > 0 {
				y += (hash2(sc.SensorSeed+uint64(t)*0x9E3779B9, int64(px), int64(py)) - 0.5) * 2 * sc.SensorAmp
			}
			row[px] = frame.ClampU8(int(math.Round(y)))
		}
	}
	for py := 0; py < size.H/2; py++ {
		cbRow := f.Cb.Row(py)
		crRow := f.Cr.Row(py)
		for px := 0; px < size.W/2; px++ {
			wx, wy := sc.Camera.world(float64(2*px)+1, float64(2*py)+1, size.W, size.H, t)
			s := sc.sampleWorld(wx, wy, t)
			cbRow[px] = frame.ClampU8(int(math.Round(128 + s.Cb)))
			crRow[px] = frame.ClampU8(int(math.Round(128 + s.Cr)))
		}
	}
	return f
}

// Background is an infinite textured plane (always alpha 1).
type Background struct {
	Tex  Noise
	Base float64 // mean luma
	Amp  float64 // texture amplitude (peak-to-peak luma swing)
	Cb   float64 // chroma offsets from neutral
	Cr   float64
}

// Sample implements Layer.
func (b *Background) Sample(x, y float64, t int) (Sample, float64) {
	v := b.Base + (b.Tex.At(x, y)-0.5)*b.Amp
	return Sample{Y: v, Cb: b.Cb, Cr: b.Cr}, 1
}

// Gradient adds a smooth vertical luma ramp, giving low-texture scenes
// (Miss America) DC variation between blocks without adding detail.
type Gradient struct {
	Top, Bottom float64 // luma at the top/bottom of the world window
	SpanY       float64 // world-space vertical span of the ramp
	Strength    float64 // blend factor in (0, 1]
}

// Sample implements Layer.
func (g *Gradient) Sample(x, y float64, t int) (Sample, float64) {
	ty := y/g.SpanY + 0.5
	if ty < 0 {
		ty = 0
	}
	if ty > 1 {
		ty = 1
	}
	return Sample{Y: g.Top + (g.Bottom-g.Top)*ty}, g.Strength
}

// Sprite is a textured ellipse or rectangle moving along a path in world
// coordinates. Edges are softened over ~1 pixel so subpixel motion reads
// as smooth intensity change rather than jumping coverage.
type Sprite struct {
	CX, CY func(t int) float64 // centre path
	RX, RY float64             // radii (half-width/height for Rect)
	Rect   bool
	Tex    Noise
	Base   float64
	Amp    float64
	Cb, Cr float64
	// TexLocked pins the texture to the sprite so it moves with it
	// (true for heads, balls); false pins texture to the world (windows).
	TexLocked bool
}

// Sample implements Layer.
func (s *Sprite) Sample(x, y float64, t int) (Sample, float64) {
	cx, cy := s.CX(t), s.CY(t)
	dx, dy := x-cx, y-cy
	var dist float64 // >1 outside, <1 inside, in normalised units
	if s.Rect {
		ax, ay := math.Abs(dx)/s.RX, math.Abs(dy)/s.RY
		dist = math.Max(ax, ay)
	} else {
		dist = math.Sqrt(dx*dx/(s.RX*s.RX) + dy*dy/(s.RY*s.RY))
	}
	// Soft edge: full coverage inside dist<1-e, zero outside dist>1.
	const edge = 0.04
	var alpha float64
	switch {
	case dist <= 1-edge:
		alpha = 1
	case dist >= 1:
		return Sample{}, 0
	default:
		alpha = (1 - dist) / edge
	}
	tx, ty := x, y
	if s.TexLocked {
		tx, ty = dx, dy
	}
	v := s.Base + (s.Tex.At(tx, ty)-0.5)*s.Amp
	return Sample{Y: v, Cb: s.Cb, Cr: s.Cr}, alpha
}

// Window is a rectangular cut-out (screen region in world coordinates)
// showing a separately panning texture — the car window of Carphone, where
// background scenery streams past faster than the cabin.
type Window struct {
	X0, Y0, X1, Y1 float64 // world-space rectangle
	Tex            Noise
	Base, Amp      float64
	Cb, Cr         float64
	ScrollX        func(t int) float64 // texture offset per frame
	ScrollY        func(t int) float64
}

// Sample implements Layer.
func (w *Window) Sample(x, y float64, t int) (Sample, float64) {
	if x < w.X0 || x > w.X1 || y < w.Y0 || y > w.Y1 {
		return Sample{}, 0
	}
	sx, sy := 0.0, 0.0
	if w.ScrollX != nil {
		sx = w.ScrollX(t)
	}
	if w.ScrollY != nil {
		sy = w.ScrollY(t)
	}
	v := w.Base + (w.Tex.At(x+sx, y+sy)-0.5)*w.Amp
	return Sample{Y: v, Cb: w.Cb, Cr: w.Cr}, 1
}
