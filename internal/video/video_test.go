package video

import (
	"math"
	"testing"

	"repro/internal/frame"
	"repro/internal/metrics"
	"repro/internal/mvfield"
)

func TestNoiseDeterministic(t *testing.T) {
	n := Noise{Seed: 42, Scale: 8, Octaves: 3}
	m := Noise{Seed: 42, Scale: 8, Octaves: 3}
	for _, pos := range [][2]float64{{0, 0}, {1.5, 2.25}, {-3.7, 100.1}} {
		if n.At(pos[0], pos[1]) != m.At(pos[0], pos[1]) {
			t.Fatalf("noise not deterministic at %v", pos)
		}
	}
	diff := Noise{Seed: 43, Scale: 8, Octaves: 3}
	same := true
	for x := 0.0; x < 10; x++ {
		if n.At(x, 0) != diff.At(x, 0) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical noise")
	}
}

func TestNoiseRangeAndContinuity(t *testing.T) {
	n := Noise{Seed: 7, Scale: 10, Octaves: 4}
	prev := n.At(0, 3.3)
	for i := 1; i <= 400; i++ {
		x := float64(i) * 0.1
		v := n.At(x, 3.3)
		if v < 0 || v >= 1 {
			t.Fatalf("noise out of range at %v: %v", x, v)
		}
		if math.Abs(v-prev) > 0.25 {
			t.Fatalf("noise discontinuity at %v: %v -> %v", x, prev, v)
		}
		prev = v
	}
}

func TestGenerateDeterministicAndSized(t *testing.T) {
	a := Generate(Carphone, frame.SQCIF, 3, 1)
	b := Generate(Carphone, frame.SQCIF, 3, 1)
	if len(a) != 3 {
		t.Fatalf("got %d frames", len(a))
	}
	for i := range a {
		if a[i].Size() != frame.SQCIF {
			t.Fatalf("frame %d size %v", i, a[i].Size())
		}
		if !a[i].Equal(b[i]) {
			t.Fatalf("frame %d not deterministic", i)
		}
	}
	c := Generate(Carphone, frame.SQCIF, 1, 2)
	if a[0].Equal(c[0]) {
		t.Fatal("different seeds produced identical frames")
	}
}

func TestProfilesProduceMotion(t *testing.T) {
	// Consecutive frames must differ (there is motion) but not be noise
	// (majority of samples stay close).
	for _, p := range Profiles {
		fr := Generate(p, frame.SQCIF, 2, 3)
		mse, err := frame.MSE(fr[0].Y, fr[1].Y)
		if err != nil {
			t.Fatal(err)
		}
		if mse == 0 {
			t.Errorf("%v: consecutive frames identical", p)
		}
		if mse > 3000 {
			t.Errorf("%v: consecutive frames unrelated (MSE %.0f)", p, mse)
		}
	}
}

func TestTextureOrderingAcrossProfiles(t *testing.T) {
	// Foreman must be the most textured profile and Miss America the
	// least — this drives the Intra_SAD separation behind Table 1.
	meanIntraSAD := func(p Profile) float64 {
		f := Generate(p, frame.QCIF, 1, 5)[0].Y
		total, n := 0, 0
		for by := 0; by+16 <= f.H; by += 16 {
			for bx := 0; bx+16 <= f.W; bx += 16 {
				total += metrics.IntraSAD(f, bx, by, 16, 16)
				n++
			}
		}
		return float64(total) / float64(n)
	}
	miss := meanIntraSAD(MissAmerica)
	car := meanIntraSAD(Carphone)
	fore := meanIntraSAD(Foreman)
	if !(miss < car && car < fore) {
		t.Fatalf("texture ordering violated: miss=%.0f car=%.0f foreman=%.0f", miss, car, fore)
	}
	if fore < 2*miss {
		t.Fatalf("texture contrast too small: miss=%.0f foreman=%.0f", miss, fore)
	}
}

func TestMotionMagnitudeOrdering(t *testing.T) {
	// Frame-to-frame change should be smallest for Miss America and
	// largest for Foreman during its abrupt pan.
	change := func(p Profile, t0 int) float64 {
		sc := p.Scene(9)
		a := sc.Render(frame.SQCIF, t0)
		b := sc.Render(frame.SQCIF, t0+1)
		mse, _ := frame.MSE(a.Y, b.Y)
		return mse
	}
	miss := change(MissAmerica, 10)
	forePan := change(Foreman, 50) // inside the abrupt pan
	if miss >= forePan {
		t.Fatalf("motion ordering violated: miss=%.1f foreman-pan=%.1f", miss, forePan)
	}
}

func TestDecimate(t *testing.T) {
	fr := Generate(MissAmerica, frame.SQCIF, 10, 1)
	d3 := Decimate(fr, 3)
	if len(d3) != 4 { // frames 0,3,6,9
		t.Fatalf("Decimate(10,3) = %d frames, want 4", len(d3))
	}
	if !d3[1].Equal(fr[3]) {
		t.Fatal("Decimate did not keep every 3rd frame")
	}
	d1 := Decimate(fr, 1)
	if len(d1) != 10 {
		t.Fatal("factor 1 must keep all frames")
	}
	d1[0] = nil // must be a copy of the slice header
	if fr[0] == nil {
		t.Fatal("Decimate aliases the input slice")
	}
}

func TestStringNames(t *testing.T) {
	names := map[Profile]string{
		MissAmerica: "Miss America",
		Carphone:    "Carphone",
		Foreman:     "Foreman",
		TableTennis: "Table",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
	if Profile(99).String() == "" {
		t.Error("unknown profile must still format")
	}
}

func TestGlobalMotionSequenceExactness(t *testing.T) {
	ref := ReferenceFrame(Foreman, frame.SQCIF, 11)
	mvs := DefaultGlobalMVs
	seq, err := GlobalMotionSequence(ref, mvs)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(mvs)+1 {
		t.Fatalf("got %d frames, want %d", len(seq), len(mvs)+1)
	}
	// Interior blocks of frame i+1 must match frame i displaced by mv
	// exactly (SAD 0).
	for i, mv := range mvs {
		dx, dy := mv.FullPel()
		cur, prev := seq[i+1], seq[i]
		bx, by := 48, 40 // interior block far from borders
		if got := metrics.SAD(cur, bx, by, prev, bx-dx, by-dy, 16, 16); got != 0 {
			t.Fatalf("step %d: interior SAD = %d, want 0", i, got)
		}
	}
}

func TestGlobalMotionSequenceRejectsHalfPel(t *testing.T) {
	ref := frame.NewPlane(32, 32)
	_, err := GlobalMotionSequence(ref, []mvfield.MV{{X: 1, Y: 0}})
	if err == nil {
		t.Fatal("half-pel global MV accepted")
	}
	var bad *BadMVError
	if !asBadMV(err, &bad) {
		t.Fatalf("error type %T, want *BadMVError", err)
	}
}

func asBadMV(err error, target **BadMVError) bool {
	b, ok := err.(*BadMVError)
	if ok {
		*target = b
	}
	return ok
}

func TestCameraZoomChangesScale(t *testing.T) {
	// With 2x zoom, the world window halves: a feature at world (10,0)
	// appears 20px right of centre instead of 10.
	cam := Camera{Zoom: func(int) float64 { return 2 }}
	wx, _ := cam.world(84, 48, 128, 96, 0) // 20px right of centre
	if math.Abs(wx-10) > 1e-9 {
		t.Fatalf("world x = %v, want 10", wx)
	}
}

func TestSpriteSoftEdge(t *testing.T) {
	s := &Sprite{
		CX: func(int) float64 { return 0 }, CY: func(int) float64 { return 0 },
		RX: 10, RY: 10,
		Tex: Noise{Seed: 1, Scale: 8, Octaves: 1}, Base: 200, Amp: 0,
	}
	if _, a := s.Sample(0, 0, 0); a != 1 {
		t.Fatal("centre not fully covered")
	}
	if _, a := s.Sample(20, 0, 0); a != 0 {
		t.Fatal("far outside not empty")
	}
	if _, a := s.Sample(9.8, 0, 0); a <= 0 || a > 1 {
		t.Fatalf("edge alpha = %v, want in (0,1]", a)
	}
}

func TestSensorNoiseChangesPerFrame(t *testing.T) {
	sc := WithSensorNoise(MissAmerica.Scene(1), 2.0, 7)
	a := sc.Render(frame.SQCIF, 0)
	b := sc.Render(frame.SQCIF, 0) // same frame index: identical
	if !a.Equal(b) {
		t.Fatal("sensor noise not deterministic per frame index")
	}
	// Between frames the noise decorrelates: even a static scene differs.
	static := &Scene{Layers: []Layer{&Background{Tex: Noise{Seed: 1, Scale: 20, Octaves: 2}, Base: 128, Amp: 10}}}
	static = WithSensorNoise(static, 2.0, 7)
	f0 := static.Render(frame.SQCIF, 0)
	f1 := static.Render(frame.SQCIF, 1)
	mse, _ := frame.MSE(f0.Y, f1.Y)
	if mse == 0 {
		t.Fatal("sensor noise identical across frames")
	}
	if mse > 20 {
		t.Fatalf("sensor noise too strong: MSE %.1f", mse)
	}
}

func TestSensorNoiseRaisesSADFloor(t *testing.T) {
	clean := MissAmerica.Scene(3)
	noisy := WithSensorNoise(MissAmerica.Scene(3), 2.0, 3)
	sadAt := func(sc *Scene) int {
		a := sc.Render(frame.SQCIF, 10)
		b := sc.Render(frame.SQCIF, 11)
		return metrics.SAD(b.Y, 48, 40, a.Y, 48, 40, 16, 16)
	}
	if sadAt(noisy) <= sadAt(clean) {
		t.Fatal("sensor noise did not raise the matching error floor")
	}
}
