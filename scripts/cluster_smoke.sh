#!/bin/sh
# cluster-smoke: boot two vcodecd backends plus a vcodec-gateway on random
# loopback ports, drive the gateway with a byte-verified vload burst, kill
# one backend mid-run, require the next burst to still verify (failover),
# then SIGTERM the gateway and require a clean drain.
# Expects the vcodecd, vcodec-gateway and vload binaries in $BIN
# (default ./bin).
set -eu

BIN=${BIN:-bin}
tmp=$(mktemp -d)
pid1=""
pid2=""
gwpid=""
cleanup() {
	for p in "$pid1" "$pid2" "$gwpid"; do
		[ -n "$p" ] && kill "$p" 2>/dev/null || true
	done
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

wait_addr() {
	i=0
	while [ ! -s "$1" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "cluster-smoke: $2 never wrote its address" >&2
			exit 1
		fi
		sleep 0.1
	done
	cat "$1"
}

"$BIN/vcodecd" -addr 127.0.0.1:0 -addrfile "$tmp/b1" -max-sessions 4 &
pid1=$!
"$BIN/vcodecd" -addr 127.0.0.1:0 -addrfile "$tmp/b2" -max-sessions 4 &
pid2=$!
b1=$(wait_addr "$tmp/b1" vcodecd-1)
b2=$(wait_addr "$tmp/b2" vcodecd-2)
echo "cluster-smoke: backends on $b1 and $b2"

"$BIN/vcodec-gateway" -addr 127.0.0.1:0 -addrfile "$tmp/gw" \
	-backends "http://$b1,http://$b2" \
	-poll-interval 100ms -breaker-cooldown 500ms &
gwpid=$!
gw=$(wait_addr "$tmp/gw" vcodec-gateway)
echo "cluster-smoke: gateway on $gw"

# Burst 1: both backends healthy; every session byte-verified against the
# offline encoder (vload polls the gateway's /healthz before starting).
"$BIN/vload" -url "http://$gw" -sessions 1,4 -frames 6 -size sqcif -verify

# Kill one backend outright (no drain), then burst again immediately: the
# gateway must detect the dead backend (health poll + connect failures)
# and route everything to the survivor with every stream still verifying.
echo "cluster-smoke: killing backend $b1 mid-run"
kill -KILL "$pid1"
pid1=""
"$BIN/vload" -url "http://$gw" -sessions 4 -frames 6 -size sqcif -verify -retry-after

# Graceful shutdown in gateway-then-backend order: SIGTERM must drain and
# exit 0 on both.
kill -TERM "$gwpid"
if wait "$gwpid"; then
	gwpid=""
	echo "cluster-smoke: gateway clean shutdown"
else
	rc=$?
	gwpid=""
	echo "cluster-smoke: vcodec-gateway exited with status $rc" >&2
	exit 1
fi
kill -TERM "$pid2"
if wait "$pid2"; then
	pid2=""
	echo "cluster-smoke: backend clean shutdown"
else
	rc=$?
	pid2=""
	echo "cluster-smoke: vcodecd exited with status $rc" >&2
	exit 1
fi
