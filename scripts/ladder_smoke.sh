#!/bin/sh
# ladder-smoke: boot vcodecd on a random loopback port, upload one clip
# to /encode?ladder=, split the interleaved session stream into per-rung
# artifacts, and require every rung to (a) byte-match a pinned offline
# `vcodec encode -ladder` run of the same clip and (b) decode cleanly on
# its own. Then SIGTERM the daemon and require a clean drain.
# Expects the vcodecd, vcodec and seqgen binaries in $BIN (default ./bin).
set -eu

BIN=${BIN:-bin}
tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

ladder="128x128,64x64,32x32"
qp=14
me=pbm
frames=6

# One synthetic clip sized to the ladder's top rung, and the pinned
# offline ladder encode every served rung must byte-match.
"$BIN/seqgen" -profile foreman -size 128x128 -frames $frames -seed 7 -o "$tmp/in.y4m"
"$BIN/vcodec" encode -i "$tmp/in.y4m" -o "$tmp/off.acbm" -qp $qp -me $me -ladder "$ladder"

"$BIN/vcodecd" -addr 127.0.0.1:0 -addrfile "$tmp/addr" -max-sessions 4 &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "ladder-smoke: vcodecd never wrote its address" >&2
		exit 1
	fi
	sleep 0.1
done
addr=$(cat "$tmp/addr")
echo "ladder-smoke: daemon on $addr"

# One ladder session: upload the clip, save the interleaved stream.
curl -sf --data-binary "@$tmp/in.y4m" \
	"http://$addr/encode?qp=$qp&me=$me&ladder=$ladder" >"$tmp/stream.bin"

# Split the session into per-rung artifacts; each must byte-match the
# pinned offline run and decode cleanly with no ladder awareness.
"$BIN/vcodec" ladder-split -i "$tmp/stream.bin" -o "$tmp/srv.acbm"
for r in 0 1 2; do
	if ! cmp -s "$tmp/off.r$r.acbm" "$tmp/srv.r$r.acbm"; then
		echo "ladder-smoke: rung $r differs from the offline encode" >&2
		exit 1
	fi
	"$BIN/vcodec" decode -packets -i "$tmp/srv.r$r.acbm" -o "$tmp/dec.r$r.y4m"
done
echo "ladder-smoke: 3 rungs byte-match the offline ladder and decode cleanly"

# The plane pool's per-class counters must be live on /metrics — ladder
# sessions churn downscaled planes, so the hits series must be present.
curl -sf "http://$addr/metrics" >"$tmp/metrics"
for fam in vcodecd_frame_pool_hits_total vcodecd_frame_pool_misses_total; do
	if ! grep -q "^# TYPE $fam counter\$" "$tmp/metrics"; then
		echo "ladder-smoke: /metrics missing 'TYPE $fam counter'" >&2
		exit 1
	fi
done

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$pid"
if wait "$pid"; then
	pid=""
	echo "ladder-smoke: clean shutdown"
else
	rc=$?
	pid=""
	echo "ladder-smoke: vcodecd exited with status $rc" >&2
	exit 1
fi
