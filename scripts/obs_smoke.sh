#!/bin/sh
# obs-smoke: boot vcodecd on a random loopback port, drive it with a
# short vload burst, then exercise the flight-recorder surface end to
# end: list completed sessions, fetch one trace by ID, assert its frame
# count matches what the session streamed, check the /metrics histogram
# metadata, and require a clean SIGTERM drain.
# Expects the vcodecd and vload binaries in $BIN (default ./bin).
set -eu

BIN=${BIN:-bin}
tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

"$BIN/vcodecd" -addr 127.0.0.1:0 -addrfile "$tmp/addr" -max-sessions 4 &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "obs-smoke: vcodecd never wrote its address" >&2
		exit 1
	fi
	sleep 0.1
done
addr=$(cat "$tmp/addr")
echo "obs-smoke: daemon on $addr"

frames=6
"$BIN/vload" -url "http://$addr" -sessions 2 -frames $frames -size sqcif

# Every burst session must be in the completed ring, listed by trace ID.
curl -sf "http://$addr/debug/vcodec/sessions" >"$tmp/sessions"
completed=$(tr ',' '\n' <"$tmp/sessions" | grep -c '"trace_id"')
if [ "$completed" -lt 2 ]; then
	echo "obs-smoke: $completed sessions listed, want >= 2" >&2
	cat "$tmp/sessions" >&2
	exit 1
fi

# Fetch the first listed trace by ID and assert its frame count matches
# what the session streamed.
trace=$(tr ',' '\n' <"$tmp/sessions" | grep '"trace_id"' | head -1 | sed 's/.*"trace_id":"\([^"]*\)".*/\1/')
echo "obs-smoke: fetching trace $trace"
curl -sf "http://$addr/debug/vcodec/trace?id=$trace" >"$tmp/trace"
got=$(tr ',' '\n' <"$tmp/trace" | grep '"frames"' | head -1 | sed 's/[^0-9]*//g')
if [ "$got" != "$frames" ]; then
	echo "obs-smoke: trace $trace has $got frames, want $frames" >&2
	cat "$tmp/trace" >&2
	exit 1
fi
events=$(tr '{' '\n' <"$tmp/trace" | grep -c '"analysis_ms"')
if [ "$events" != "$frames" ]; then
	echo "obs-smoke: trace $trace has $events timeline events, want $frames" >&2
	exit 1
fi

# An unknown ID must 404, not 200-with-garbage.
if curl -sf "http://$addr/debug/vcodec/trace?id=doesnotexist00" >/dev/null 2>&1; then
	echo "obs-smoke: unknown trace ID did not 404" >&2
	exit 1
fi

# The latency histograms must be on /metrics with their TYPE metadata.
curl -sf "http://$addr/metrics" >"$tmp/metrics"
for fam in vcodecd_analysis_seconds vcodecd_entropy_seconds vcodecd_emit_seconds vcodecd_first_packet_seconds; do
	if ! grep -q "^# TYPE $fam histogram\$" "$tmp/metrics"; then
		echo "obs-smoke: /metrics missing 'TYPE $fam histogram'" >&2
		exit 1
	fi
	if ! grep -q "^${fam}_bucket{le=\"+Inf\"}" "$tmp/metrics"; then
		echo "obs-smoke: /metrics missing ${fam} +Inf bucket" >&2
		exit 1
	fi
done
echo "obs-smoke: trace + histograms verified"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$pid"
if wait "$pid"; then
	pid=""
	echo "obs-smoke: clean shutdown"
else
	rc=$?
	pid=""
	echo "obs-smoke: vcodecd exited with status $rc" >&2
	exit 1
fi
