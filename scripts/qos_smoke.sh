#!/bin/sh
# qos-smoke: boot vcodecd with a fast, tight QoS control loop, byte-verify
# the degradation ladder through pinned sessions, push an adaptive
# mixed-priority burst past the admission cap so the controller degrades
# instead of truncating streams, require quality restored to level 0
# afterwards, then SIGTERM and require a clean drain.
# Expects the vcodecd and vload binaries in $BIN (default ./bin).
set -eu

BIN=${BIN:-bin}
tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

# A 2-session cap with a deliberately unmeetable 5ms frame target: any
# real burst overloads the loop, so the smoke exercises degradation on a
# clip short enough for CI.
"$BIN/vcodecd" -addr 127.0.0.1:0 -addrfile "$tmp/addr" -max-sessions 2 \
	-qos-interval 25ms -qos-target-ms 5 &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "qos-smoke: vcodecd never wrote its address" >&2
		exit 1
	fi
	sleep 0.1
done
addr=$(cat "$tmp/addr")
echo "qos-smoke: daemon on $addr"

# Pinned rungs: a session pinned at level N must stream byte-for-byte what
# the offline encoder produces at that level, controller notwithstanding.
for level in 0 2 3; do
	"$BIN/vload" -url "http://$addr" -sessions 1 -frames 6 -size sqcif \
		-qoslevel "$level" -verify
done

# Adaptive overload: 4 mixed-priority sessions against the 2-session cap.
# The queue absorbs the overflow (no 503s), the controller degrades
# instead of letting anyone truncate (vload fails on a short stream), and
# the verified session — pinned at level 0 by vload — must still match
# the offline encoder while its neighbors degrade.
"$BIN/vload" -url "http://$addr" -sessions 4 -frames 12 -size sqcif \
	-priority mixed -verify

# The burst is over; restore hysteresis must hand full quality back.
i=0
until curl -sf "http://$addr/healthz" | grep -q '"qos_level":0'; do
	i=$((i + 1))
	if [ "$i" -gt 200 ]; then
		echo "qos-smoke: controller never restored to level 0" >&2
		exit 1
	fi
	sleep 0.1
done
echo "qos-smoke: restored to level 0"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$pid"
if wait "$pid"; then
	pid=""
	echo "qos-smoke: clean shutdown"
else
	rc=$?
	pid=""
	echo "qos-smoke: vcodecd exited with status $rc" >&2
	exit 1
fi
