#!/bin/sh
# serve-smoke: boot vcodecd on a random loopback port, drive it with a
# short verified vload burst, then SIGTERM it and require a clean drain.
# Expects the vcodecd and vload binaries in $BIN (default ./bin).
set -eu

BIN=${BIN:-bin}
tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

"$BIN/vcodecd" -addr 127.0.0.1:0 -addrfile "$tmp/addr" -max-sessions 4 &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "serve-smoke: vcodecd never wrote its address" >&2
		exit 1
	fi
	sleep 0.1
done
addr=$(cat "$tmp/addr")
echo "serve-smoke: daemon on $addr"

# A short burst across 1 and 2 concurrent sessions, byte-verified against
# the offline encoder (vload polls /healthz before starting).
"$BIN/vload" -url "http://$addr" -sessions 1,2 -frames 6 -size sqcif -verify

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$pid"
if wait "$pid"; then
	pid=""
	echo "serve-smoke: clean shutdown"
else
	rc=$?
	pid=""
	echo "serve-smoke: vcodecd exited with status $rc" >&2
	exit 1
fi
